// Package wgbalance_basic pins the WaitGroup accounting: guaranteed
// negative counters, Waits that can never return, locally-leaked positive
// counters, and the Add-inside-goroutine race — against the worker-pool
// idioms that must stay silent.
package wgbalance_basic

import "sync"

func doneWithoutAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Done() // want "wg.Done\(\) without a matching Add on any path to here"
}

func waitForever() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait() // want "wg.Wait\(\) blocks forever"
}

func leakedCounter(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	work()
} // want "wg counter is still positive here on every path"

func addInsideGoroutine(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "wg.Add\(\) inside the spawned goroutine races with Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// track is an in-package helper whose summary carries the Add.
func track(wg *sync.WaitGroup) {
	wg.Add(1)
}

// finish is its counterpart carrying the Done.
func finish(wg *sync.WaitGroup) {
	wg.Done()
}

func doneViaHelperBelowZero() {
	var wg sync.WaitGroup
	track(&wg)
	finish(&wg)
	finish(&wg) // want "wg.Done\(\) without a matching Add on any path to here"
}

// pool is the canonical worker-pool shape: Add before spawn, Done inside
// the goroutine (credited at the go statement), Wait balanced. Silent.
func pool(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// workerSide only calls Done: the Add happened in its caller. A key is
// created only by Add, so the worker side is never flagged here.
func workerSide(wg *sync.WaitGroup, work func()) {
	defer wg.Done()
	work()
}

// escaped: handing the WaitGroup to an unknown callee poisons the key —
// the callee may Add or Done arbitrarily, so no report can be definite.
func escaped(register func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	register(&wg)
	wg.Wait()
}

// conditionalAdd: the counter is positive on only one path into Wait, so
// the block-forever report (which needs every path) must stay silent.
func conditionalAdd(c bool, wg2 chan struct{}) {
	var wg sync.WaitGroup
	if c {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-wg2
		}()
	}
	wg.Wait()
}

// suppressed: the ignore comment covers the finding's line.
func suppressed() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait() //vqlint:ignore wgbalance demo of a deliberate deadlock
}
