// Golden fixture for the detorder analyzer: map-order taint must reach an
// order-sensitive sink (or escape) without a dominating sort to fire.
package fixture

import (
	"fmt"
	"sort"
)

// True positive: the keys escape in map order.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "out accumulates map keys in map order and is never sorted afterwards"
	}
	return out
}

// Negative: sorted before any use — the classic safe idiom.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortFor(xs []string) {
	sort.Strings(xs)
}

// Negative: the sort happens inside a helper; the EstablishesOrder summary
// carries the fact to this caller.
func helperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortFor(out)
	return out
}

// True positive: a sort on one branch protects only that branch.
func branchSorted(m map[string]int, ordered bool) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "out accumulates map keys in map order and is never sorted afterwards"
	}
	if ordered {
		sort.Strings(out)
	}
	return out
}

// Negative: an empty or single-element slice has no observable order, so
// the len guard before the early return is clean.
func guardedEmpty(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if len(out) <= 1 {
		return out
	}
	sort.Strings(out)
	return out
}

// True positive through an alias: the copy carries the taint to the sink.
func aliased(m map[string]int) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	view := out
	fmt.Println(view) // want "out accumulates map keys in map order and is emitted without an intervening sort"
	sort.Strings(out)
}

// True positive: float accumulation into an outer variable.
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "floating-point accumulation in map order"
	}
	return s
}

// True positive: direct emission inside the range.
func dump(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "output emitted while ranging over a map"
	}
}

func emitRow(k string) {
	fmt.Println(k)
}

// True positive: the helper's OrderSensitive summary makes the call a sink.
func dumpViaHelper(m map[string]int) {
	for k := range m {
		emitRow(k) // want "emitRow emits order-sensitive output, called while ranging over a map"
	}
}

// Negative: loop-local state is order-independent by construction.
func localOnly(m map[string]int) int {
	n := 0
	for range m {
		local := []int{1}
		local = append(local, 2)
		n += len(local)
	}
	return n
}
