// Golden fixture for the poollifetime analyzer: use-after-Release and
// double-Release over rendering-keyed lifetimes.
package fixture

import "sync"

type scratch struct{ n int }

func (s *scratch) Release() {}

func (s *scratch) Merge(o *scratch) { s.n += o.n }

func NewScratch() *scratch { return &scratch{} }

var scratchPool sync.Pool

// True positive: released twice.
func doubleRelease() {
	s := NewScratch()
	s.Release()
	s.Release() // want "s released twice: already released at line 20"
}

// True positive: read after release.
func useAfter() int {
	s := NewScratch()
	s.Release()
	return s.n // want "use of s after its release at line 27"
}

// True positive: the alias still names the released value.
func useAfterViaAlias() int {
	s := NewScratch()
	s.Release()
	v := s
	return v.n // want "use of s after its release at line 34"
}

// Negative: rebinding starts a new lifetime.
func rebound() int {
	s := NewScratch()
	s.Release()
	s = NewScratch()
	n := s.n
	s.Release()
	return n
}

// Negative: a nil comparison is the guard idiom, not a use.
func nilGuarded(s *scratch) bool {
	s.Release()
	return s == nil
}

// True positive: merge pipelines must merge before releasing the source.
func mergeAfterRelease(dst, src *scratch) {
	src.Release()
	dst.Merge(src) // want "use of src after its release at line 57"
}

// Negative: the correct order — merge, then release, then rebind.
func mergeThenRelease(shards []*scratch, dst, src int) {
	shards[dst].Merge(shards[src])
	shards[src].Release()
	shards[src] = nil
}

// True positive: element lifetimes are tracked by rendering, so the
// indexed use after the indexed release fires.
func elementUseAfter(shards []*scratch, src int) int {
	shards[src].Release()
	return shards[src].n // want "use of shards\[src\] after its release at line 71"
}

// Negative: reassigning the index variable retargets the rendering.
func indexRetargeted(shards []*scratch, src int) int {
	shards[src].Release()
	src++
	return shards[src].n
}

func releaseHelper(s *scratch) {
	s.Release()
}

// True positive: the release happens inside a helper; the Releases summary
// carries the fact back to this caller.
func useAfterHelper() int {
	s := NewScratch()
	releaseHelper(s)
	return s.n // want "use of s after its release at line 90"
}

// True positive: a value released on one path must not be used after the
// join.
func branchReleased(cond bool) int {
	s := NewScratch()
	if cond {
		s.Release()
	}
	return s.n // want "use of s after its release at line 99"
}

// True positive: sending a released value over a channel hands another
// goroutine a pooled object the pool may already have reissued.
func selectOnReleased(ch chan *scratch) {
	s := NewScratch()
	s.Release()
	select {
	case ch <- s: // want "use of s after its release at line 108"
	default:
	}
}

// True positive: an explicit release duplicated by the deferred one.
func deferThenExplicit() {
	s := NewScratch()
	defer s.Release()
	s.n++
	s.Release() // want "s is released here and again by the deferred release at line 118"
}

// True positive: two deferred releases both run at return.
func doubleDefer() {
	s := NewScratch()
	defer s.Release()
	defer s.Release() // want "s has two deferred releases \(first at line 126\)"
}

// Negative: the plain defer idiom.
func deferOnly() int {
	s := NewScratch()
	defer s.Release()
	return s.n
}

// True positive: sync.Pool Put is a release; using the value afterwards
// races with the next Get.
func putThenUse() int {
	b := scratchPool.Get().(*scratch)
	scratchPool.Put(b)
	return b.n // want "use of b after its release at line 141"
}

// Negative: each loop iteration rebinds the range value.
func releaseAll(all []*scratch) {
	for _, s := range all {
		s.Release()
	}
}
