// Golden fixture for the lockbalance analyzer (see want_test.go for the
// // want comment contract).
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

// True positive: the fast-path return leaves the lock held.
func earlyReturn(s *store) int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want "s.mu reaches this return still locked"
	}
	s.mu.Unlock()
	return 0
}

// True positive: control falls off the end with the lock outstanding.
func fallsOff(s *store) {
	s.mu.Lock()
	s.n++
} // want "still locked"

// Guarded negative: the deferred unlock balances every path, including the
// early return.
func balanced(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return s.n
	}
	return 0
}

// Guarded negative: explicit unlock on each branch.
func branches(s *store, flush bool) int {
	s.mu.Lock()
	if flush {
		s.n = 0
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}
