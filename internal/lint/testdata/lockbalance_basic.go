// Golden fixture for the lockbalance analyzer (see want_test.go for the
// // want comment contract).
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

// True positive: the fast-path return leaves the lock held.
func earlyReturn(s *store) int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want "s.mu reaches this return still locked"
	}
	s.mu.Unlock()
	return 0
}

// True positive: control falls off the end with the lock outstanding.
func fallsOff(s *store) {
	s.mu.Lock()
	s.n++
} // want "still locked"

// Guarded negative: the deferred unlock balances every path, including the
// early return.
func balanced(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return s.n
	}
	return 0
}

// Guarded negative: explicit unlock on each branch.
func branches(s *store, flush bool) int {
	s.mu.Lock()
	if flush {
		s.n = 0
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// lockStore/unlockStore carry definite ±1 deltas on their parameter's .mu in
// their summaries; the imbalance below only surfaces interprocedurally. A
// deliberate lock helper suppresses its own local imbalance report — its
// callers are still charged through the summary.
func lockStore(s *store)   { s.mu.Lock() }   //vqlint:ignore lockbalance lock helper returns holding s.mu by design
func unlockStore(s *store) { s.mu.Unlock() } //vqlint:ignore lockbalance unlock helper, paired with lockStore

// Interprocedural negative: lock and unlock through helpers balance.
func viaHelpers(s *store) int {
	lockStore(s)
	n := s.n
	unlockStore(s)
	return n
}

// Interprocedural positive: the helper returns holding the lock and the
// early path leaks it.
func leakViaHelper(s *store, flush bool) int {
	lockStore(s)
	if flush {
		return 0 // want "s.mu reaches this return still locked"
	}
	n := s.n
	unlockStore(s)
	return n
}

// Interprocedural positive: locking twice through the helper is the same
// self-deadlock as two direct Lock calls.
func doubleLockViaHelper(s *store) {
	lockStore(s)
	lockStore(s) // want "lockStore locks s.mu which is already locked on every path to here"
	unlockStore(s)
	unlockStore(s)
}
