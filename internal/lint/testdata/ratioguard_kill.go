// Package ratioguard_kill pins the selector-assignment kill: a guard fact
// about a field must die when the field (or anything reachable from its
// base) is written through a selector, index, or dereference — not only
// when the bare identifier is reassigned.
package ratioguard_kill

type stats struct {
	n     int
	total float64
}

// selectorKill: the guard proves s.n != 0, then s.n = 0 invalidates it.
// Before the kill fix the stale fact suppressed this report.
func selectorKill(s *stats, x float64) float64 {
	if s.n == 0 {
		return 0
	}
	s.n = 0
	return x / float64(s.n) // want "division by float64\(s.n\) is not dominated"
}

// baseKill: writing a *different* field through the same base also kills —
// coarse by design, because the analysis cannot prove s.total and s.n are
// unaliased after arbitrary writes through s.
func baseKill(s *stats, x float64) float64 {
	if s.n == 0 {
		return 0
	}
	s.total = 0
	return x / float64(s.n) // want "division by float64\(s.n\) is not dominated"
}

// guardHolds: no intervening write — the guard must keep suppressing.
func guardHolds(s *stats, x float64) float64 {
	if s.n == 0 {
		return 0
	}
	return x / float64(s.n)
}

// unrelatedWrite: mutating a different base variable leaves the fact about
// s.n alive — the kill is keyed on base identifiers, not a blanket wipe.
func unrelatedWrite(s *stats, other *stats, x float64) float64 {
	if s.n == 0 {
		return 0
	}
	other.n = 1
	return x / float64(s.n)
}
