// Golden fixture exercised with all four path-sensitive analyzers at once:
// adversarial control flow — goto across blocks, labeled break/continue,
// select with and without default, retry loops — that the v1 syntactic
// walkers could not follow.
package fixture

import "sync"

type conn struct{ id int }

func (c *conn) Release() {}

func Acquire() *conn { return &conn{} }

// errProbe keeps probe's error summary unknown: a callee proven to always
// return nil would (correctly) exempt its dead stores from errflow.
var errProbe error

func probe() error { return errProbe }

// goto across blocks: the cleanup path releases the lock, the n==0 path
// returns while still holding it.
func gotoPaths(mu *sync.Mutex, n int) int {
	mu.Lock()
	if n < 0 {
		goto cleanup
	}
	if n == 0 {
		return -1 // want "mu reaches this return still locked"
	}
	mu.Unlock()
	return n
cleanup:
	mu.Unlock()
	return 0
}

// Labeled break out of a nested loop: the break arm already unlocked, so
// the final unlock only holds on the exhausted path.
func scanRows(mu *sync.Mutex, rows [][]int) {
	mu.Lock()
search:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				mu.Unlock()
				break search
			}
			if v == 0 {
				continue search
			}
		}
	}
	mu.Unlock() // want "mu is not locked on every path"
}

// select with default: ownership leaves on the send arm and is released on
// the other two — balanced on every path.
func publish(ch chan *conn, stop chan struct{}) {
	c := Acquire()
	select {
	case ch <- c:
	case <-stop:
		c.Release()
	default:
		c.Release()
	}
}

// select whose default arm forgets the release.
func publishLeak(ch chan *conn) {
	c := Acquire()
	select {
	case ch <- c:
	default:
	}
} // want "c acquired from Acquire .* does not reach Release/Put"

// Retry via backward goto: the error is checked before every loop-back, so
// no store is dead.
func retryGoto() error {
	tries := 0
retry:
	err := probe()
	if err != nil && tries < 3 {
		tries++
		goto retry
	}
	return err
}

// Every path out of the loop assignment overwrites err before reading it.
func pollUntil(n int) error {
	var err error
	for i := 0; i < n; i++ {
		err = probe() // want "overwritten or dropped"
		if i == n-1 {
			break
		}
	}
	err = probe()
	return err
}

// The zero guard covers only the first switch arm; the default arm divides
// unguarded.
func switchRatio(mode, problems, total int) float64 {
	switch mode {
	case 0:
		if total == 0 {
			return 0
		}
		return float64(problems) / float64(total)
	default:
		return float64(problems) / float64(total) // want "not dominated by a non-zero guard"
	}
}
