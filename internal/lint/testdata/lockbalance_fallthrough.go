// Package lockbalance_fallthrough pins the CFG repair for fallthrough after
// a nested switch: the pending fallthrough edge must survive the inner
// switch's own clause wiring. Before the fix the edge was dropped, so lock
// state never flowed from the falling-through case into the next one —
// hiding leaks (and, in the other direction, fabricating them).
package lockbalance_fallthrough

import "sync"

// leakThroughFallthrough: the lock taken in case 1 rides the fallthrough
// (through a nested switch) into case 3, which returns without unlocking.
// With the fallthrough edge dropped, the locked state never arrived and
// this leak was invisible.
func leakThroughFallthrough(mu *sync.Mutex, x, y int) {
	switch x {
	case 1:
		mu.Lock()
		switch y {
		case 2:
		}
		fallthrough
	case 3:
		return // want "mu may reach this return still locked"
	}
}

// balancedThroughFallthrough: every path into case 3 (direct or via the
// fallthrough) and the default unlock exactly once. A dropped fallthrough
// edge would leave case 1's lock unmatched and report a false leak here.
func balancedThroughFallthrough(mu *sync.Mutex, x, y int) {
	mu.Lock()
	switch x {
	case 1:
		switch y {
		case 2:
		}
		fallthrough
	case 3:
		mu.Unlock()
	default:
		mu.Unlock()
	}
}
