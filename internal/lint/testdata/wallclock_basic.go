// Golden fixture for the wallclock analyzer. The corpus package path
// (corpus/wallclock_basic) is a member of the deterministic cone, with
// backoffAllowed on the allowlist.
package fixture

import (
	"math/rand"
	"time"
)

// True positive: a direct wall-clock read in cone code.
func stamp() int64 {
	return time.Now().UnixNano() // want "call to time.Now in the deterministic analysis cone"
}

// True positive: timer channels observe the wall clock too.
func timeout() <-chan time.Time {
	return time.After(time.Second) // want "call to time.After in the deterministic analysis cone"
}

// True positive: the global rand source is seeded from the clock.
func jitter() int {
	return rand.Intn(10) // want "global rand.Intn in the deterministic analysis cone"
}

// Negative: an explicitly seeded generator is deterministic.
func seeded() int {
	return rand.New(rand.NewSource(42)).Intn(10)
}

// Negative: duration arithmetic never reads the clock.
func window(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// Allowlisted: reconnect backoff is wall-clock-bound by design — no
// finding on its own body.
func backoffAllowed() <-chan time.Time {
	return time.After(time.Second)
}

// True positive: calling the allowlisted function from non-allowlisted
// code pulls the clock back into the cone; the allowlist excuses the
// function, not its callers.
func caller() {
	backoffAllowed() // want "call to backoffAllowed, which reads the wall clock"
}

// Not re-reported: stamp is tainted but not allowlisted, so the finding
// already exists at stamp's own read site — a second report here would be
// noise.
func indirect() int64 {
	return stamp()
}

// True positive: package-level initializers run before any config can
// thread a clock through.
var started = time.Now() // want "call to time.Now in a package-level initializer"
