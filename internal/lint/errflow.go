package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// ErrFlow reports error values that are assigned from a call and then never
// observed on any path before being overwritten or going dead. This is the
// dataflow complement of errdrop: errdrop catches `f()` as a bare
// statement; errflow catches the subtler
//
//	err := f()
//	err = g() // the f() error was never checked
//
// and the end-of-function variant where the last assignment to err is never
// read again. The analysis is a backward may-liveness problem over the CFG,
// per error-typed local variable (parameters and named results included).
// Any read — a condition, a call argument, a return value, `_ = err`, a
// panic argument — keeps the store live. Variables captured by nested
// function literals or having their address taken are exempt: their reads
// happen where a single-function analysis cannot see them.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "assigned error is overwritten or dropped before any path checks it",
	Run:  runErrFlow,
}

// efState is the live set: variables whose current value may still be read.
type efState map[*types.Var]bool

func efClone(s efState) efState {
	c := make(efState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func efEqual(a, b efState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func efJoin(dst, src efState) efState {
	for k := range src {
		dst[k] = true
	}
	return dst
}

func runErrFlow(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			errFlowFunc(p, fn)
		}
	}
}

func errFlowFunc(p *Pass, fn funcScope) {
	relevant := efRelevantVars(p, fn)
	if len(relevant) == 0 {
		return
	}
	g := cfg.New(fn.body)
	named := efNamedErrorResults(p, fn)
	prob := flow.Problem[efState]{
		Backward: true,
		Boundary: func() efState { return efState{} },
		Transfer: func(b *cfg.Block, s efState) efState {
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				efTransferNode(p, b.Nodes[i], s, relevant, named)
			}
			return s
		},
		Join:  efJoin,
		Equal: efEqual,
		Clone: efClone,
	}
	res := flow.Solve(g, prob)

	// Replay each forward-reachable block backward from its fixed-point
	// after-state; at each assignment of a call result to a relevant
	// variable that is dead right after the store, report.
	for _, b := range g.Reachable() {
		after, ok := res.In[b]
		if !ok {
			continue
		}
		s := efClone(after)
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			if asg, ok := n.(*ast.AssignStmt); ok {
				efReportDeadStores(p, asg, s, relevant)
			}
			efTransferNode(p, n, s, relevant, named)
		}
	}
}

// efRelevantVars collects the error-typed variables this function declares
// (via :=, var, parameters, or named results), excluding any that are
// captured by nested literals or have their address taken.
func efRelevantVars(p *Pass, fn funcScope) map[*types.Var]bool {
	rel := make(map[*types.Var]bool)
	addDef := func(id *ast.Ident) {
		if v, ok := p.Info.Defs[id].(*types.Var); ok && !v.IsField() && isErrorType(v.Type()) {
			rel[v] = true
		}
	}
	for _, fl := range []*ast.FieldList{fn.ftype.Params, fn.ftype.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				addDef(name)
			}
		}
	}
	inspectShallow(fn.body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			addDef(id)
		}
		return true
	})
	if len(rel) == 0 {
		return rel
	}
	for v := range capturedVars(p, fn.body) {
		delete(rel, v)
	}
	// Address-taken variables alias; drop them.
	inspectShallow(fn.body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, ok := unparen(u.X).(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok {
					delete(rel, v)
				}
			}
		}
		return true
	})
	return rel
}

// efNamedErrorResults returns the function's named error results: a naked
// `return` reads all of them.
func efNamedErrorResults(p *Pass, fn funcScope) []*types.Var {
	var out []*types.Var
	if fn.ftype.Results == nil {
		return nil
	}
	for _, field := range fn.ftype.Results.List {
		for _, name := range field.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok && isErrorType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// efTransferNode applies one node backward: live = (live − defs) ∪ uses.
func efTransferNode(p *Pass, n ast.Node, s efState, rel map[*types.Var]bool, named []*types.Var) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Defs kill first (we are walking backward, so kills apply before
		// the uses of the same statement are added back).
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := efVarOf(p, id); v != nil && rel[v] {
					delete(s, v)
				}
				continue
			}
			// A store through a selector/index reads its base.
			efAddUses(p, lhs, s, rel)
		}
		for _, rhs := range n.Rhs {
			efAddUses(p, rhs, s, rel)
		}

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if v := efVarOf(p, name); v != nil && rel[v] {
							delete(s, v)
						}
					}
					for _, val := range vs.Values {
						efAddUses(p, val, s, rel)
					}
				}
			}
		}

	case *ast.ReturnStmt:
		if len(n.Results) == 0 {
			// Naked return: reads every named error result.
			for _, v := range named {
				if rel[v] {
					s[v] = true
				}
			}
			return
		}
		for _, r := range n.Results {
			efAddUses(p, r, s, rel)
		}

	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := efVarOf(p, id); v != nil && rel[v] {
					delete(s, v)
				}
			}
		}

	default:
		efAddUses(p, n, s, rel)
	}
}

// efReportDeadStores reports call-result stores into relevant variables
// that are dead immediately after the assignment. s must be the live set
// *after* the assignment (the replay calls this before applying the node's
// own backward transfer). Nil stores (`err = nil`) reset state and are
// exempt.
func efReportDeadStores(p *Pass, n *ast.AssignStmt, s efState, rel map[*types.Var]bool) {
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := efVarOf(p, id)
		if v == nil || !rel[v] || s[v] {
			continue
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		call, isCall := unparen(rhs).(*ast.CallExpr)
		if !isCall {
			continue
		}
		// Interprocedural refinement: a callee proven to return a nil error
		// on every path makes the unread store harmless — the value being
		// dropped is always nil, exactly like the exempt `err = nil` reset.
		if sum := p.Sums.ForCall(call); sum != nil && sum.Error == summary.ErrAlwaysNil {
			continue
		}
		p.Reportf(id.Pos(), "the error assigned to %s is overwritten or dropped before any path reads it", v.Name())
	}
}

// efAddUses adds every relevant identifier read within n to the live set.
func efAddUses(p *Pass, n ast.Node, s efState, rel map[*types.Var]bool) {
	if n == nil {
		return
	}
	inspectCFGNode(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v := efVarOf(p, id); v != nil && rel[v] {
				s[v] = true
			}
		}
		return true
	})
}

func efVarOf(p *Pass, id *ast.Ident) *types.Var {
	var obj types.Object
	if o, ok := p.Info.Defs[id]; ok {
		obj = o
	} else {
		obj = p.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}
