package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeCacheModule lays out a two-package module where b imports a, so the
// tests can observe keys propagating through the in-module import closure.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nfunc B() int { return a.A() }\n",
		"c/c.go": "package c\n\nfunc C() int { return 3 }\n",
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func planKeys(t *testing.T, dir, salt string) map[string]string {
	t.Helper()
	entries, err := PlanCache(dir, []string{"./..."}, salt)
	if err != nil {
		t.Fatalf("PlanCache: %v", err)
	}
	keys := make(map[string]string, len(entries))
	for _, e := range entries {
		keys[e.Path] = e.Key
	}
	return keys
}

// TestPlanCacheKeys pins the contract of the content keys: stable across
// runs, content-addressed (restoring bytes restores the key), propagated
// through in-module imports, independent across unrelated packages, and
// salted by the run configuration.
func TestPlanCacheKeys(t *testing.T) {
	dir := writeCacheModule(t)
	base := planKeys(t, dir, "s1")
	for _, path := range []string{"tmpmod/a", "tmpmod/b", "tmpmod/c"} {
		if base[path] == "" {
			t.Fatalf("no key planned for %s (got %v)", path, base)
		}
	}
	if again := planKeys(t, dir, "s1"); again["tmpmod/a"] != base["tmpmod/a"] || again["tmpmod/b"] != base["tmpmod/b"] {
		t.Fatalf("keys not stable across plans: %v vs %v", again, base)
	}

	// Editing a must re-key a and its importer b, but not the unrelated c.
	aFile := filepath.Join(dir, "a", "a.go")
	orig, err := os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aFile, append(orig, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := planKeys(t, dir, "s1")
	if edited["tmpmod/a"] == base["tmpmod/a"] {
		t.Error("editing a/a.go did not change a's key")
	}
	if edited["tmpmod/b"] == base["tmpmod/b"] {
		t.Error("editing a/a.go did not propagate to importer b")
	}
	if edited["tmpmod/c"] != base["tmpmod/c"] {
		t.Error("editing a/a.go changed unrelated c's key")
	}

	// Content-addressed, not mtime-addressed: restoring the bytes restores
	// every key.
	if err := os.WriteFile(aFile, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	restored := planKeys(t, dir, "s1")
	for path, k := range base {
		if restored[path] != k {
			t.Errorf("restoring a/a.go did not restore %s's key", path)
		}
	}

	// A different salt (rule set, schema) must re-key everything.
	salted := planKeys(t, dir, "s2")
	for path, k := range base {
		if salted[path] == k {
			t.Errorf("salt change did not re-key %s", path)
		}
	}
}
