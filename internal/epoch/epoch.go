// Package epoch provides the discrete one-hour time base of the analysis.
// The paper divides its two-week dataset into one-hour epochs (§3.1); all
// clustering, prevalence, and persistence computations are per-epoch.
package epoch

import (
	"fmt"
	"time"
)

// Index is a zero-based hour index into the trace.
type Index int32

const (
	// HoursPerDay and HoursPerWeek define the calendar used when slicing
	// traces into training/test windows (paper §5.2).
	HoursPerDay  = 24
	HoursPerWeek = 7 * HoursPerDay

	// DefaultTraceEpochs is the paper's two-week span in hours.
	DefaultTraceEpochs = 2 * HoursPerWeek
)

// Duration is the length of one epoch.
const Duration = time.Hour

// Range is a half-open interval of epochs [Start, End).
type Range struct {
	Start Index
	End   Index
}

// NewRange builds a validated range.
func NewRange(start, end Index) (Range, error) {
	if start < 0 || end < start {
		return Range{}, fmt.Errorf("epoch: invalid range [%d, %d)", start, end)
	}
	return Range{Start: start, End: end}, nil
}

// Len returns the number of epochs in the range.
func (r Range) Len() int { return int(r.End - r.Start) }

// Contains reports whether e falls in the range.
func (r Range) Contains(e Index) bool { return e >= r.Start && e < r.End }

// Split partitions the range at an absolute epoch boundary, returning
// [Start, at) and [at, End). The boundary is clamped to the range.
func (r Range) Split(at Index) (Range, Range) {
	if at < r.Start {
		at = r.Start
	}
	if at > r.End {
		at = r.End
	}
	return Range{r.Start, at}, Range{at, r.End}
}

// Week returns the week-long sub-range starting at week w (zero-based),
// clamped to the range.
func (r Range) Week(w int) Range {
	start := r.Start + Index(w*HoursPerWeek)
	end := start + HoursPerWeek
	if start > r.End {
		start = r.End
	}
	if end > r.End {
		end = r.End
	}
	return Range{start, end}
}

// Epochs returns each index in the range, in order.
func (r Range) Epochs() []Index {
	out := make([]Index, 0, r.Len())
	for e := r.Start; e < r.End; e++ {
		out = append(out, e)
	}
	return out
}

// Clock maps epoch indexes to wall-clock times for display, anchored at a
// trace start time.
type Clock struct {
	Start time.Time
}

// Time returns the wall-clock start of epoch e.
func (c Clock) Time(e Index) time.Time {
	return c.Start.Add(time.Duration(e) * Duration)
}

// Epoch returns the epoch containing wall-clock time t. Times before the
// anchor map to negative indexes.
func (c Clock) Epoch(t time.Time) Index {
	d := t.Sub(c.Start)
	e := d / Duration
	if d < 0 && d%Duration != 0 {
		e--
	}
	return Index(e)
}

// Label renders the epoch in the compact "3/11 5h" style used by the
// paper's time axes.
func (c Clock) Label(e Index) string {
	t := c.Time(e)
	return fmt.Sprintf("%d/%d %dh", int(t.Month()), t.Day(), t.Hour())
}

// DefaultClock anchors traces at the paper's first timestamp (March 11,
// UTC); the year is immaterial to the analysis.
func DefaultClock() Clock {
	return Clock{Start: time.Date(2013, time.March, 11, 0, 0, 0, 0, time.UTC)}
}

// HourOfDay returns the hour-of-day (0–23) of epoch e, used by diurnal
// workload models.
func HourOfDay(e Index) int {
	h := int(e) % HoursPerDay
	if h < 0 {
		h += HoursPerDay
	}
	return h
}

// DayOfTrace returns the zero-based day number of epoch e.
func DayOfTrace(e Index) int {
	if e < 0 {
		return int((e - HoursPerDay + 1) / HoursPerDay)
	}
	return int(e) / HoursPerDay
}
