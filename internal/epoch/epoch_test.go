package epoch

import (
	"testing"
	"time"
)

func TestNewRange(t *testing.T) {
	r, err := NewRange(0, 168)
	if err != nil {
		t.Fatalf("NewRange: %v", err)
	}
	if r.Len() != 168 {
		t.Errorf("Len() = %d, want 168", r.Len())
	}
	if _, err := NewRange(-1, 5); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := NewRange(5, 4); err == nil {
		t.Error("end before start accepted")
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{10, 20}
	for _, c := range []struct {
		e    Index
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := r.Contains(c.e); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestRangeSplit(t *testing.T) {
	r := Range{0, 336}
	train, test := r.Split(96) // paper's intra-week split: first 4 days
	if train.Len() != 96 || test.Start != 96 || test.End != 336 {
		t.Errorf("Split(96) = %+v, %+v", train, test)
	}
	lo, hi := r.Split(-5)
	if lo.Len() != 0 || hi != r {
		t.Errorf("Split below range = %+v, %+v", lo, hi)
	}
	lo, hi = r.Split(999)
	if lo != r || hi.Len() != 0 {
		t.Errorf("Split above range = %+v, %+v", lo, hi)
	}
}

func TestRangeWeek(t *testing.T) {
	r := Range{0, DefaultTraceEpochs}
	w0, w1 := r.Week(0), r.Week(1)
	if w0.Start != 0 || w0.End != HoursPerWeek {
		t.Errorf("Week(0) = %+v", w0)
	}
	if w1.Start != HoursPerWeek || w1.End != 2*HoursPerWeek {
		t.Errorf("Week(1) = %+v", w1)
	}
	short := Range{0, 100}
	w1 = short.Week(1)
	if w1.Len() != 0 {
		t.Errorf("Week beyond trace should be empty, got %+v", w1)
	}
}

func TestRangeEpochs(t *testing.T) {
	r := Range{3, 6}
	got := r.Epochs()
	want := []Index{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Epochs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Epochs()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestClockRoundTrip(t *testing.T) {
	c := DefaultClock()
	for _, e := range []Index{0, 1, 167, 335} {
		if got := c.Epoch(c.Time(e)); got != e {
			t.Errorf("Epoch(Time(%d)) = %d", e, got)
		}
	}
	// Mid-epoch times map to the containing epoch.
	if got := c.Epoch(c.Time(5).Add(30 * time.Minute)); got != 5 {
		t.Errorf("mid-epoch mapped to %d, want 5", got)
	}
	// Before the anchor maps negative.
	if got := c.Epoch(c.Start.Add(-time.Minute)); got != -1 {
		t.Errorf("pre-anchor epoch = %d, want -1", got)
	}
}

func TestClockLabel(t *testing.T) {
	c := DefaultClock()
	if got := c.Label(0); got != "3/11 0h" {
		t.Errorf("Label(0) = %q, want 3/11 0h", got)
	}
	if got := c.Label(25); got != "3/12 1h" {
		t.Errorf("Label(25) = %q, want 3/12 1h", got)
	}
}

func TestHourOfDayAndDay(t *testing.T) {
	if HourOfDay(0) != 0 || HourOfDay(23) != 23 || HourOfDay(24) != 0 || HourOfDay(49) != 1 {
		t.Error("HourOfDay arithmetic wrong")
	}
	if HourOfDay(-1) != 23 {
		t.Errorf("HourOfDay(-1) = %d, want 23", HourOfDay(-1))
	}
	if DayOfTrace(0) != 0 || DayOfTrace(23) != 0 || DayOfTrace(24) != 1 || DayOfTrace(335) != 13 {
		t.Error("DayOfTrace arithmetic wrong")
	}
	if DayOfTrace(-1) != -1 {
		t.Errorf("DayOfTrace(-1) = %d, want -1", DayOfTrace(-1))
	}
}
