package cluster

import (
	"runtime"
	"sync"

	"repro/internal/attr"
	"repro/internal/core/cktable"
	"repro/internal/epoch"
)

// ResolveWorkers maps a configured worker count to an effective one:
// values <= 0 mean GOMAXPROCS.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// shardIDPool recycles the per-epoch shard-assignment buffer.
var shardIDPool sync.Pool

func acquireShardIDs(n int) []uint8 {
	if p, ok := shardIDPool.Get().(*[]uint8); ok {
		if cap(*p) >= n {
			return (*p)[:n]
		}
		shardIDPool.Put(p) // too small for this epoch; keep it for smaller ones
	}
	return make([]uint8, n)
}

func releaseShardIDs(ids []uint8) {
	shardIDPool.Put(&ids)
}

// NewTableParallel builds the same count table as NewTable by sharding the
// session stream across workers goroutines. Sessions are partitioned by the
// splitmix64 hash of their full attribute vector (cktable.VectorHash), so
// equal vectors — and therefore all fine-mask keys — stay shard-local; each
// worker fills its own pooled cktable plus a local root, and the shard
// tables are then combined pairwise (tree merge, concurrent rounds) via
// cktable.Table.Merge's linear slot walk.
//
// Every count is an integer sum, so the resulting table is identical — as a
// key→counts mapping, including the root — to NewTable's for any worker
// count; the differential tests in this package assert exactly that, and
// downstream consumers (BuildView, the critical detector) observe the table
// only through order-insensitive reads or explicit sorts.
func NewTableParallel(e epoch.Index, sessions []Lite, maxDims, workers int) *Table {
	workers = ResolveWorkers(workers)
	if workers > 256 {
		workers = 256 // shard ids are bytes; 256 shards is already absurd
	}
	if workers <= 1 {
		return NewTable(e, sessions, maxDims)
	}
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}

	// One serial pre-pass computes each session's shard so the per-worker
	// scans below test a byte instead of re-hashing the vector W times.
	ids := acquireShardIDs(len(sessions))
	for i := range sessions {
		ids[i] = uint8(cktable.VectorHash(sessions[i].Attrs) % uint64(workers))
	}

	shards := make([]*cktable.Table, workers)
	roots := make([]Counts, workers)
	sizeHint := len(sessions) / workers // workers >= 2 past the early return
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tbl := cktable.Acquire(sizeHint, maxDims)
			var root Counts
			me := uint8(w)
			for i := range sessions {
				if ids[i] != me {
					continue
				}
				l := &sessions[i]
				root.Add(l.Bits, l.Failed)
				tbl.AddSession(l.Attrs, l.Bits, l.Failed)
			}
			shards[w] = tbl
			roots[w] = root
		}(w)
	}
	wg.Wait()
	releaseShardIDs(ids)

	// Tree merge: log2(workers) concurrent rounds of pairwise merges, so
	// the serial fraction is one final merge instead of workers-1.
	for stride := 1; stride < workers; stride *= 2 {
		var mg sync.WaitGroup
		for j := 0; j+stride < workers; j += 2 * stride {
			mg.Add(1)
			go func(dst, src int) {
				defer mg.Done()
				shards[dst].Merge(shards[src])
				shards[src].Release()
				shards[src] = nil
				roots[dst].Merge(roots[src])
			}(j, j+stride)
		}
		mg.Wait()
	}

	return &Table{
		Epoch:    e,
		Root:     roots[0],
		Sessions: sessions,
		MaxDims:  maxDims,
		ck:       shards[0],
	}
}

// litePool recycles per-epoch digest buffers between epochs. AnalyzeEpoch
// and the online detector do not retain their lites argument beyond the
// call (the pooled table's session reference is cleared on release), so
// returning a buffer after analysis is safe.
var litePool sync.Pool

// AcquireLites returns an empty digest buffer, reusing pooled capacity.
func AcquireLites() []Lite {
	if p, ok := litePool.Get().(*[]Lite); ok {
		return (*p)[:0]
	}
	return nil
}

// ReleaseLites returns a digest buffer to the pool.
func ReleaseLites(lites []Lite) {
	if cap(lites) > 0 {
		litePool.Put(&lites)
	}
}
