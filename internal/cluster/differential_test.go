// Differential harness for the cktable aggregation engine: the old
// map-based accumulation path survives here as a test-only reference
// implementation, and randomized trials assert that the engine-backed
// production path produces identical cluster counts, identical problem-
// cluster sets, identical critical-cluster sets, and bit-for-bit identical
// attribution tallies for every metric. The reference detector mirrors the
// production detector's accumulation order exactly, so any float divergence
// is an engine bug, not reordering noise.
package cluster_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/eps"
	"repro/internal/critical"
	"repro/internal/metric"
)

// refTable is the pre-engine representation: one Go map entry per cluster
// key, accumulated with attr.MasksUpTo + attr.KeyOf per session.
type refTable struct {
	root  cluster.Counts
	cells map[attr.Key]cluster.Counts
}

func buildRefTable(sessions []cluster.Lite, maxDims int) *refTable {
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}
	masks := attr.MasksUpTo(maxDims)
	rt := &refTable{cells: make(map[attr.Key]cluster.Counts)}
	for i := range sessions {
		l := &sessions[i]
		rt.root.Add(l.Bits, l.Failed)
		for _, m := range masks {
			k := attr.KeyOf(l.Attrs, m)
			c := rt.cells[k]
			c.Add(l.Bits, l.Failed)
			rt.cells[k] = c
		}
	}
	return rt
}

func (rt *refTable) get(k attr.Key) cluster.Counts {
	if k.Mask == 0 {
		return rt.root
	}
	return rt.cells[k]
}

// refView derives the problem-cluster view of one metric from the
// reference table, replicating BuildView's threshold derivation.
func refView(rt *refTable, m metric.Metric, th metric.Thresholds) *cluster.View {
	v := &cluster.View{
		Metric:         m,
		GlobalSessions: rt.root.Sessions(m),
		GlobalProblems: rt.root.Problems[m],
		GlobalRatio:    rt.root.Ratio(m),
		MinSessions:    int32(th.MinClusterSessions),
		MinZScore:      th.MinZScore,
		Problem:        make(map[attr.Key]cluster.Counts),
	}
	v.Threshold = th.ProblemRatioFactor * v.GlobalRatio
	if eps.Zero(v.GlobalRatio) {
		return v
	}
	for k, c := range rt.cells {
		if v.IsProblem(c) {
			v.Problem[k] = c
		}
	}
	return v
}

// refCluster mirrors critical.Cluster's tallies.
type refCluster struct {
	counts             cluster.Counts
	attributedProblems float64
	attributedSessions float64
	problemClusters    float64
}

type refAgg struct{ sig, prob int64 }

// refDetect reimplements the critical-cluster detector over the reference
// map, preserving every accumulation order the production code uses so the
// fractional tallies agree exactly.
func refDetect(rt *refTable, sessions []cluster.Lite, v *cluster.View, opts critical.Options) (map[attr.Key]*refCluster, int32) {
	m := v.Metric

	// Significant-children stats per candidate and added dimension.
	stats := make(map[attr.Key]*[attr.NumDims]refAgg)
	for k := range v.Problem {
		stats[k] = new([attr.NumDims]refAgg)
	}
	for k, c := range rt.cells {
		n := c.Sessions(m)
		if n < v.MinSessions {
			continue
		}
		problem := v.IsProblemRatioOnly(c)
		for _, d := range k.Mask.Dims() {
			agg, ok := stats[k.Parent(d)]
			if !ok {
				continue
			}
			agg[d].sig += int64(n)
			if problem {
				agg[d].prob += int64(n)
			}
		}
	}

	passesUp := func(k attr.Key, c cluster.Counts) bool {
		for _, p := range k.Parents() {
			if p.Mask == 0 {
				continue
			}
			pc := rt.get(p)
			if !v.IsProblem(pc) {
				continue
			}
			if !v.IsProblemCounts(pc.Sessions(m)-c.Sessions(m), pc.Problems[m]-c.Problems[m]) {
				continue
			}
			return false
		}
		return true
	}
	passesDown := func(k attr.Key) bool {
		agg := stats[k]
		for d := attr.Dim(0); d < attr.NumDims; d++ {
			if k.Mask.Has(d) {
				continue
			}
			a := agg[d]
			if a.sig == 0 {
				continue
			}
			if float64(a.prob)/float64(a.sig) < opts.ChildProblemFraction {
				return false
			}
		}
		return true
	}

	crit := make(map[attr.Key]*refCluster)
	for k, c := range v.Problem {
		if passesUp(k, c) && passesDown(k) {
			crit[k] = &refCluster{counts: c}
		}
	}

	// Dedupe correlated refinements: finest first, drop near-duplicates of
	// critical ancestors.
	keys := make([]attr.Key, 0, len(crit))
	for k := range crit {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		si, sj := keys[i].Mask.Size(), keys[j].Mask.Size()
		if si != sj {
			return si > sj
		}
		return keys[i].Less(keys[j])
	})
	for _, k := range keys {
		c, ok := crit[k]
		if !ok {
			continue
		}
		for _, sub := range k.SubKeys() {
			if sub == k {
				continue
			}
			anc, ok := crit[sub]
			if !ok {
				continue
			}
			ancN := anc.counts.Sessions(m)
			if ancN > 0 && float64(c.counts.Sessions(m)) >= opts.DedupeOverlap*float64(ancN) {
				delete(crit, k)
				break
			}
		}
	}

	// Problem-cluster attribution, sorted key order for bit-identical sums.
	problemKeys := make([]attr.Key, 0, len(v.Problem))
	for k := range v.Problem {
		problemKeys = append(problemKeys, k)
	}
	sort.Slice(problemKeys, func(i, j int) bool { return problemKeys[i].Less(problemKeys[j]) })
	for _, k := range problemKeys {
		var nearest []attr.Key
		bestSize := -1
		for _, sub := range k.SubKeys() {
			if _, ok := crit[sub]; !ok {
				continue
			}
			size := sub.Mask.Size()
			switch {
			case size > bestSize:
				bestSize = size
				nearest = append(nearest[:0], sub)
			case size == bestSize:
				nearest = append(nearest, sub)
			}
		}
		if len(nearest) == 0 {
			for ck := range crit {
				if ck != k && k.Subsumes(ck) {
					nearest = append(nearest, ck)
				}
			}
			sort.Slice(nearest, func(i, j int) bool { return nearest[i].Less(nearest[j]) })
		}
		if len(nearest) == 0 {
			continue
		}
		share := 1 / float64(len(nearest))
		for _, ck := range nearest {
			crit[ck].problemClusters += share
		}
	}

	// Session attribution in trace order, masks sorted.
	maskSeen := make(map[attr.Mask]bool)
	var masks []attr.Mask
	for k := range crit {
		if !maskSeen[k.Mask] {
			maskSeen[k.Mask] = true
			masks = append(masks, k.Mask)
		}
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	var covered int32
	var buf []attr.Key
	for i := range sessions {
		l := &sessions[i]
		if !l.Defined(m) {
			continue
		}
		buf = buf[:0]
		bestSize := -1
		for _, mk := range masks {
			key := attr.KeyOf(l.Attrs, mk)
			if _, ok := crit[key]; !ok {
				continue
			}
			size := mk.Size()
			switch {
			case size > bestSize:
				bestSize = size
				buf = append(buf[:0], key)
			case size == bestSize:
				buf = append(buf, key)
			}
		}
		if len(buf) == 0 {
			continue
		}
		problem := l.Problem(m)
		if problem {
			covered++
		}
		share := 1 / float64(len(buf))
		for _, key := range buf {
			cc := crit[key]
			cc.attributedSessions += share
			if problem {
				cc.attributedProblems += share
			}
		}
	}
	return crit, covered
}

// genLites produces a reproducible random epoch: small attribute
// cardinalities force heavy cell sharing (dense hash-table collisions), a
// failure rate exercises the failed/continuous split, and per-metric
// problem rates vary by cell so problem and critical clusters emerge.
func genLites(rng *rand.Rand, n int, card int32) []cluster.Lite {
	lites := make([]cluster.Lite, 0, n)
	for i := 0; i < n; i++ {
		var l cluster.Lite
		for d := attr.Dim(0); d < attr.NumDims; d++ {
			l.Attrs[d] = rng.Int31n(card)
		}
		if rng.Float64() < 0.05 {
			l.Failed = true
			l.Bits = 1 << metric.JoinFailure
		} else {
			// Concentrate problems in low-valued cells so some clusters sit
			// far above the global ratio.
			hot := l.Attrs[attr.CDN] == 0 && l.Attrs[attr.ASN] == 0
			for _, m := range []metric.Metric{metric.BufRatio, metric.Bitrate, metric.JoinTime} {
				p := 0.05
				if hot {
					p = 0.6
				}
				if rng.Float64() < p {
					l.Bits |= 1 << m
				}
			}
		}
		lites = append(lites, l)
	}
	return lites
}

// TestDifferentialEngineVsMap is the main differential property test: for
// randomized epochs across several shapes, the cktable-backed production
// pipeline must agree with the map-based reference on every observable.
func TestDifferentialEngineVsMap(t *testing.T) {
	trials := []struct {
		seed     int64
		sessions int
		card     int32
		maxDims  int
		minSess  int
	}{
		{seed: 1, sessions: 600, card: 3, maxDims: 0, minSess: 20},
		{seed: 2, sessions: 400, card: 2, maxDims: 0, minSess: 10},
		{seed: 3, sessions: 800, card: 4, maxDims: 3, minSess: 25},
		{seed: 4, sessions: 300, card: 6, maxDims: 2, minSess: 15},
		{seed: 5, sessions: 1000, card: 3, maxDims: 5, minSess: 50},
		{seed: 6, sessions: 50, card: 8, maxDims: 0, minSess: 10}, // sparse: most cells singletons
	}
	for _, tr := range trials {
		rng := rand.New(rand.NewSource(tr.seed))
		lites := genLites(rng, tr.sessions, tr.card)
		th := metric.Default()
		th.MinClusterSessions = tr.minSess

		rt := buildRefTable(lites, tr.maxDims)
		tbl := cluster.NewTable(7, lites, tr.maxDims)

		// Table equivalence: root, cardinality, every cell both ways.
		if tbl.Root != rt.root {
			t.Fatalf("trial %d: root %+v != ref %+v", tr.seed, tbl.Root, rt.root)
		}
		if tbl.Len() != len(rt.cells) {
			t.Fatalf("trial %d: Len %d != ref %d", tr.seed, tbl.Len(), len(rt.cells))
		}
		tbl.ForEach(func(k attr.Key, c cluster.Counts) {
			if rc, ok := rt.cells[k]; !ok || rc != c {
				t.Fatalf("trial %d: key %v engine %+v ref %+v (present %v)", tr.seed, k, c, rt.cells[k], ok)
			}
		})
		for k, rc := range rt.cells {
			if got := tbl.Get(k); got != rc {
				t.Fatalf("trial %d: Get(%v) = %+v, ref %+v", tr.seed, k, got, rc)
			}
		}
		// Probing for absent keys must miss cleanly.
		miss := attr.NewKey(map[attr.Dim]int32{attr.CDN: tr.card + 17})
		if got := tbl.Get(miss); got != (cluster.Counts{}) {
			t.Fatalf("trial %d: Get(absent) = %+v", tr.seed, got)
		}

		for _, m := range metric.All() {
			pv, err := cluster.BuildView(tbl, m, th)
			if err != nil {
				t.Fatal(err)
			}
			rv := refView(rt, m, th)
			if pv.GlobalSessions != rv.GlobalSessions || pv.GlobalProblems != rv.GlobalProblems ||
				pv.GlobalRatio != rv.GlobalRatio || pv.Threshold != rv.Threshold {
				t.Fatalf("trial %d %v: globals %+v vs ref %+v", tr.seed, m, pv, rv)
			}
			if !reflect.DeepEqual(pv.Problem, rv.Problem) {
				t.Fatalf("trial %d %v: problem sets differ: %d vs %d keys",
					tr.seed, m, len(pv.Problem), len(rv.Problem))
			}
			if got, want := pv.ProblemSessionsInClusters(), refProblemCoverage(lites, rv); got != want {
				t.Fatalf("trial %d %v: problem coverage %d != ref %d", tr.seed, m, got, want)
			}

			opts := critical.DefaultOptions()
			det := critical.DetectOpts(pv, opts)
			refCrit, refCovered := refDetect(rt, lites, rv, opts)
			if len(det.Critical) != len(refCrit) {
				t.Fatalf("trial %d %v: critical sets differ: %d vs %d",
					tr.seed, m, len(det.Critical), len(refCrit))
			}
			for k, cc := range det.Critical {
				rc, ok := refCrit[k]
				if !ok {
					t.Fatalf("trial %d %v: engine-only critical key %v", tr.seed, m, k)
				}
				if cc.Counts != rc.counts {
					t.Fatalf("trial %d %v: critical %v counts %+v vs ref %+v", tr.seed, m, k, cc.Counts, rc.counts)
				}
				// Bit-for-bit: same accumulation order in both detectors.
				if cc.AttributedProblems != rc.attributedProblems ||
					cc.AttributedSessions != rc.attributedSessions ||
					cc.ProblemClusters != rc.problemClusters {
					t.Fatalf("trial %d %v: critical %v tallies (%v,%v,%v) vs ref (%v,%v,%v)",
						tr.seed, m, k,
						cc.AttributedProblems, cc.AttributedSessions, cc.ProblemClusters,
						rc.attributedProblems, rc.attributedSessions, rc.problemClusters)
				}
			}
			if det.CoveredProblems != refCovered {
				t.Fatalf("trial %d %v: covered %d vs ref %d", tr.seed, m, det.CoveredProblems, refCovered)
			}
		}
		tbl.Release()
	}
}

// refProblemCoverage mirrors View.ProblemSessionsInClusters over the
// reference problem set.
func refProblemCoverage(sessions []cluster.Lite, v *cluster.View) int32 {
	if len(v.Problem) == 0 {
		return 0
	}
	seen := make(map[attr.Mask]bool)
	var masks []attr.Mask
	for k := range v.Problem {
		if !seen[k.Mask] {
			seen[k.Mask] = true
			masks = append(masks, k.Mask)
		}
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	var covered int32
	for i := range sessions {
		l := &sessions[i]
		if !l.Defined(v.Metric) || !l.Problem(v.Metric) {
			continue
		}
		for _, mk := range masks {
			if _, ok := v.Problem[attr.KeyOf(l.Attrs, mk)]; ok {
				covered++
				break
			}
		}
	}
	return covered
}

// TestAnalyzeEpochPooledReuse runs the full epoch pipeline repeatedly over
// the same input: the pooled tables and scratch buffers must not leak state
// between runs, so every result is deeply equal to the first.
func TestAnalyzeEpochPooledReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lites := genLites(rng, 700, 3)
	cfg := core.DefaultConfig(len(lites))
	cfg.Thresholds.MinClusterSessions = 20
	cfg.KeepProblemKeys = true
	first, err := core.AnalyzeEpoch(5, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		again, err := core.AnalyzeEpoch(5, lites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs from first after pooled reuse", i+2)
		}
	}
	// Mix in a differently-shaped epoch between reruns: the pool hands back
	// dirtied, grown tables that must still produce identical results.
	big := genLites(rng, 2000, 5)
	if _, err := core.AnalyzeEpoch(6, big, cfg); err != nil {
		t.Fatal(err)
	}
	again, err := core.AnalyzeEpoch(5, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("result differs after interleaving a larger epoch")
	}
}

// FuzzTableVsMap fuzzes the engine against the map reference with
// byte-string-derived session sets, catching hash or probing edge cases the
// fixed trials miss.
func FuzzTableVsMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(0))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 1, 2}, uint8(3))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, maxDims uint8) {
		var lites []cluster.Lite
		for i := 0; i+7 < len(data); i += 8 {
			var l cluster.Lite
			for d := 0; d < attr.NumDims; d++ {
				l.Attrs[d] = int32(data[i+d] % 5)
			}
			ctl := data[i+7]
			l.Bits = ctl & 0x0f
			if ctl&0x10 != 0 {
				l.Failed = true
			}
			lites = append(lites, l)
		}
		if len(lites) == 0 {
			return
		}
		md := int(maxDims % (attr.NumDims + 1))
		rt := buildRefTable(lites, md)
		tbl := cluster.NewTable(0, lites, md)
		defer tbl.Release()
		if tbl.Root != rt.root || tbl.Len() != len(rt.cells) {
			t.Fatalf("root/len mismatch: %+v/%d vs %+v/%d", tbl.Root, tbl.Len(), rt.root, len(rt.cells))
		}
		tbl.ForEach(func(k attr.Key, c cluster.Counts) {
			if rc, ok := rt.cells[k]; !ok || rc != c {
				t.Fatalf("key %v: engine %+v ref %+v (present %v)", k, c, rt.cells[k], ok)
			}
		})
	})
}
