// Package cluster implements the first stage of the paper's methodology
// (§3.1): grouping the sessions of a one-hour epoch into clusters — one per
// non-empty subset of the seven attributes with concrete values — and
// culling the statistically significant problem clusters, whose problem
// ratio is at least ProblemRatioFactor times the epoch's global ratio and
// whose size meets the minimum session floor.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/attr"
	"repro/internal/core/cktable"
	"repro/internal/core/eps"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
)

// Lite is the per-session digest the analysis retains: the full attribute
// vector plus one problem bit per metric. JoinFailed doubles as the
// "continuous metrics undefined" marker.
type Lite struct {
	Attrs attr.Vector
	// Bits holds one problem flag per metric in metric order.
	Bits uint8
	// Failed mirrors QoE.JoinFailed.
	Failed bool
}

// Problem reports the problem flag for metric m.
func (l Lite) Problem(m metric.Metric) bool { return l.Bits&(1<<m) != 0 }

// Defined reports whether metric m was measurable.
func (l Lite) Defined(m metric.Metric) bool { return m == metric.JoinFailure || !l.Failed }

// Digest compresses a session under thresholds t.
func Digest(s *session.Session, t metric.Thresholds) Lite {
	var l Lite
	l.Attrs = s.Attrs
	l.Failed = s.QoE.JoinFailed
	for _, m := range metric.All() {
		if s.QoE.Problem(m, t) {
			l.Bits |= 1 << m
		}
	}
	return l
}

// Counts aggregates one cluster's sessions across all four metrics in a
// single pass. It is an alias of the aggregation engine's count cell, so
// the engine and its consumers share one representation.
type Counts = cktable.Counts

// Table is the cluster count table of one epoch: every attribute-subset
// cluster with at least one session, plus the root. Counts live in an
// open-addressing cktable rather than a Go map; read them through Get,
// Len, and ForEach. Tables built by NewTable draw their storage from a
// pool — call Release when done with one to make the next epoch's build
// allocation-free (skipping Release is safe, merely slower).
type Table struct {
	Epoch epoch.Index
	// Root aggregates the whole epoch.
	Root Counts
	// Sessions retains the per-session digests for coverage passes.
	Sessions []Lite
	// MaxDims limits the enumerated subset sizes (NumDims by default).
	MaxDims int

	ck *cktable.Table
}

// NewTable builds the count table for one epoch of sessions. maxDims <= 0
// enumerates all seven dimensions (the paper's full hierarchy). Storage is
// sized by the engine's keys-per-session heuristic (see cktable.Acquire) —
// cluster cardinality scales with sessions × enumerated masks, not with
// sessions alone.
func NewTable(e epoch.Index, sessions []Lite, maxDims int) *Table {
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}
	t := &Table{
		Epoch:    e,
		Sessions: sessions,
		MaxDims:  maxDims,
		ck:       cktable.Acquire(len(sessions), maxDims),
	}
	for i := range sessions {
		l := &sessions[i]
		t.Root.Add(l.Bits, l.Failed)
		t.ck.AddSession(l.Attrs, l.Bits, l.Failed)
	}
	return t
}

// AssembleTable wraps already-merged engine storage as an epoch count
// table — the aggregator's path, where per-node partial tables were
// combined with cktable.Table.Merge and the root counts accumulated
// alongside, so there is no single local session slice to rebuild from.
// Ownership of ck transfers to the returned table (Release returns it to
// the pool); sessions is retained for coverage passes exactly as NewTable
// retains its input, and its order is the order coverage and attribution
// passes will traverse.
func AssembleTable(e epoch.Index, sessions []Lite, maxDims int, ck *cktable.Table, root Counts) *Table {
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}
	return &Table{
		Epoch:    e,
		Root:     root,
		Sessions: sessions,
		MaxDims:  maxDims,
		ck:       ck,
	}
}

// Release returns the table's storage to the engine pool. The table (and
// any View built over it) must not be used afterwards.
func (t *Table) Release() {
	if t.ck != nil {
		t.ck.Release()
		t.ck = nil
	}
	t.Sessions = nil
}

// Get returns the counts of key k; the root key returns Root.
func (t *Table) Get(k attr.Key) Counts {
	if k.Mask == 0 {
		return t.Root
	}
	c, _ := t.ck.Get(k)
	return c
}

// Len returns the number of distinct non-root cluster keys.
func (t *Table) Len() int { return t.ck.Len() }

// ForEach calls fn for every non-root (key, counts) pair, in a
// deterministic but unsorted order (see cktable.Table.ForEach).
func (t *Table) ForEach(fn func(k attr.Key, c Counts)) { t.ck.ForEach(fn) }

// View is the problem-cluster view of one (epoch, metric) pair.
type View struct {
	Epoch  epoch.Index
	Metric metric.Metric
	// GlobalSessions and GlobalProblems aggregate the epoch.
	GlobalSessions int32
	GlobalProblems int32
	// GlobalRatio is the epoch's global problem ratio.
	GlobalRatio float64
	// Threshold is the absolute problem-ratio cutoff
	// (ProblemRatioFactor × GlobalRatio).
	Threshold float64
	// MinSessions is the statistical-significance size floor.
	MinSessions int32
	// MinZScore is the binomial significance requirement (0 disables).
	MinZScore float64
	// Problem is the set of problem clusters.
	Problem map[attr.Key]Counts

	table *Table
}

// BuildView extracts the problem clusters of metric m from a count table.
func BuildView(t *Table, m metric.Metric, th metric.Thresholds) (*View, error) {
	if err := th.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	v := &View{
		Epoch:          t.Epoch,
		Metric:         m,
		GlobalSessions: t.Root.Sessions(m),
		GlobalProblems: t.Root.Problems[m],
		GlobalRatio:    t.Root.Ratio(m),
		MinSessions:    int32(th.MinClusterSessions),
		MinZScore:      th.MinZScore,
		Problem:        make(map[attr.Key]Counts),
		table:          t,
	}
	v.Threshold = th.ProblemRatioFactor * v.GlobalRatio
	if eps.Zero(v.GlobalRatio) {
		return v, nil
	}
	t.ForEach(func(k attr.Key, c Counts) {
		if v.IsProblem(c) {
			v.Problem[k] = c
		}
	})
	return v, nil
}

// IsProblem applies the significance test to raw counts: the paper's
// two-part rule (ratio ≥ factor × global, size ≥ floor) plus the binomial
// z-score requirement when configured.
func (v *View) IsProblem(c Counts) bool {
	return v.IsProblemCounts(c.Sessions(v.Metric), c.Problems[v.Metric])
}

// IsProblemCounts is IsProblem on raw (sessions, problems) tallies; the
// critical-cluster detector uses it to re-test parents after removing a
// candidate's sessions.
func (v *View) IsProblemCounts(n, problems int32) bool {
	if n < v.MinSessions || v.Threshold <= 0 || n == 0 {
		return false
	}
	// Tolerance-aware: a cluster at exactly factor × global passes even when
	// the product sits one ulp below the quotient.
	if !eps.GTE(float64(problems)/float64(n), v.Threshold) {
		return false
	}
	if v.MinZScore > 0 {
		mean := float64(n) * v.GlobalRatio
		sd := math.Sqrt(float64(n) * v.GlobalRatio * (1 - v.GlobalRatio))
		if sd > 0 && float64(problems) < mean+v.MinZScore*sd {
			return false
		}
	}
	return true
}

// IsProblemRatioOnly applies the paper's literal two-part rule (ratio and
// size) without the z-score requirement. The critical-cluster detector's
// downward test uses it: descendants of a weak but huge anchor are
// individually too small to be z-significant, yet their uniformly elevated
// ratios are exactly the pattern the phase transition looks for.
func (v *View) IsProblemRatioOnly(c Counts) bool {
	n := c.Sessions(v.Metric)
	return n >= v.MinSessions && v.Threshold > 0 && eps.GTE(c.Ratio(v.Metric), v.Threshold)
}

// Counts returns the counts of key k from the underlying table (the root
// key returns the global counts).
func (v *View) Counts(k attr.Key) Counts { return v.table.Get(k) }

// Table returns the underlying count table.
func (v *View) Table() *Table { return v.table }

// ProblemSessionsInClusters returns how many problem sessions belong to at
// least one problem cluster — the paper's "problem cluster coverage"
// numerator (Table 1).
func (v *View) ProblemSessionsInClusters() int32 {
	if len(v.Problem) == 0 {
		return 0
	}
	masks := problemMasks(v.Problem)
	var covered int32
	for i := range v.table.Sessions {
		l := &v.table.Sessions[i]
		if !l.Defined(v.Metric) || !l.Problem(v.Metric) {
			continue
		}
		if matchesAny(l.Attrs, masks, v.Problem) {
			covered++
		}
	}
	return covered
}

// problemMasks returns the distinct masks present in a key set, sorted so
// downstream passes probe them in a deterministic order.
func problemMasks[V any](set map[attr.Key]V) []attr.Mask {
	seen := make(map[attr.Mask]bool)
	var masks []attr.Mask
	for k := range set {
		if !seen[k.Mask] {
			seen[k.Mask] = true
			masks = append(masks, k.Mask)
		}
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	return masks
}

func matchesAny[V any](v attr.Vector, masks []attr.Mask, set map[attr.Key]V) bool {
	for _, m := range masks {
		if _, ok := set[attr.KeyOf(v, m)]; ok {
			return true
		}
	}
	return false
}
