package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/metric"
	"repro/internal/session"
)

// mkLite builds a session digest over (ASN, CDN) with the remaining
// dimensions pinned to zero; problem selects the BufRatio problem flag.
func mkLite(asn, cdn int32, problem bool) Lite {
	var l Lite
	l.Attrs[attr.ASN] = asn
	l.Attrs[attr.CDN] = cdn
	if problem {
		l.Bits |= 1 << metric.BufRatio
	}
	return l
}

// addCell appends n sessions in cell (asn, cdn), p of them problems.
func addCell(dst []Lite, asn, cdn int32, n, p int) []Lite {
	for i := 0; i < n; i++ {
		dst = append(dst, mkLite(asn, cdn, i < p))
	}
	return dst
}

func thresholds(minSessions int) metric.Thresholds {
	th := metric.Default()
	th.MinClusterSessions = minSessions
	return th
}

func TestDigest(t *testing.T) {
	th := metric.Default()
	s := &session.Session{
		Attrs: attr.Vector{1, 2, 3, 0, 1, 2, 3},
		QoE:   metric.QoE{BufRatio: 0.2, BitrateKbps: 400, JoinTimeMS: 500},
	}
	l := Digest(s, th)
	if !l.Problem(metric.BufRatio) || !l.Problem(metric.Bitrate) {
		t.Error("problem flags missing")
	}
	if l.Problem(metric.JoinTime) || l.Problem(metric.JoinFailure) {
		t.Error("spurious problem flags")
	}
	if l.Failed || !l.Defined(metric.BufRatio) {
		t.Error("played session misdigested")
	}
	failed := Digest(&session.Session{QoE: metric.QoE{JoinFailed: true}}, th)
	if !failed.Problem(metric.JoinFailure) || !failed.Failed {
		t.Error("failed session misdigested")
	}
	if failed.Defined(metric.BufRatio) || !failed.Defined(metric.JoinFailure) {
		t.Error("Defined wrong for failed session")
	}
}

func TestCountsSessionsAndRatio(t *testing.T) {
	c := Counts{Total: 100, Failed: 10}
	c.Problems[metric.JoinFailure] = 10
	c.Problems[metric.BufRatio] = 18
	if c.Sessions(metric.JoinFailure) != 100 {
		t.Error("JoinFailure should count all sessions")
	}
	if c.Sessions(metric.BufRatio) != 90 {
		t.Error("continuous metrics exclude failed sessions")
	}
	if got := c.Ratio(metric.BufRatio); got != 0.2 {
		t.Errorf("Ratio = %v, want 0.2", got)
	}
	if (Counts{}).Ratio(metric.BufRatio) != 0 {
		t.Error("empty Ratio should be 0")
	}
}

// TestTableCountingInvariants: every cluster key's count equals the number
// of sessions it matches, and single-attribute clusters partition the root.
func TestTableCountingInvariants(t *testing.T) {
	var sessions []Lite
	sessions = addCell(sessions, 0, 0, 30, 10)
	sessions = addCell(sessions, 0, 1, 20, 5)
	sessions = addCell(sessions, 1, 0, 25, 0)
	tbl := NewTable(3, sessions, 0)

	if tbl.Root.Total != 75 || tbl.Root.Problems[metric.BufRatio] != 15 {
		t.Fatalf("root counts = %+v", tbl.Root)
	}
	// Single-dim partition.
	var asnTotal int32
	for _, v := range []int32{0, 1} {
		k := attr.NewKey(map[attr.Dim]int32{attr.ASN: v})
		asnTotal += tbl.Get(k).Total
	}
	if asnTotal != tbl.Root.Total {
		t.Errorf("ASN clusters sum to %d, want %d", asnTotal, tbl.Root.Total)
	}
	// Spot-check a pair cluster.
	k := attr.NewKey(map[attr.Dim]int32{attr.ASN: 0, attr.CDN: 0})
	if got := tbl.Get(k); got.Total != 30 || got.Problems[metric.BufRatio] != 10 {
		t.Errorf("cell counts = %+v", got)
	}
	// The leaf mask key for a session vector counts its exact duplicates.
	leaf := attr.KeyOf(sessions[0].Attrs, attr.AllDims)
	if got := tbl.Get(leaf).Total; got != 30 {
		t.Errorf("leaf count = %d, want 30", got)
	}
	if tbl.Epoch != 3 {
		t.Errorf("Epoch = %d", tbl.Epoch)
	}
}

func TestTableMaxDims(t *testing.T) {
	var sessions []Lite
	sessions = addCell(sessions, 0, 0, 10, 2)
	tbl := NewTable(0, sessions, 2)
	if tbl.MaxDims != 2 {
		t.Errorf("MaxDims = %d", tbl.MaxDims)
	}
	tbl.ForEach(func(k attr.Key, _ Counts) {
		if k.Size() > 2 {
			t.Fatalf("key %v exceeds MaxDims", k)
		}
	})
	// 7 single masks + 21 pair masks, all with the same constant vector.
	if tbl.Len() != 28 {
		t.Errorf("distinct keys = %d, want 28", tbl.Len())
	}
}

// TestFig3ProblemClusters encodes the paper's Fig. 3 illustration: cluster
// significance requires both elevated ratio and sufficient volume.
func TestFig3ProblemClusters(t *testing.T) {
	var sessions []Lite
	// ASN1 (=0) with CDN1 (=0): big and bad.
	sessions = addCell(sessions, 0, 0, 100, 60)
	// ASN1, CDN2: tiny (insignificant even though ratio high).
	sessions = addCell(sessions, 0, 1, 4, 3)
	// ASN2, CDN1: tiny.
	sessions = addCell(sessions, 1, 0, 5, 2)
	// ASN2, CDN2: big and healthy ("only one problem session out of 9" in
	// spirit: low ratio).
	sessions = addCell(sessions, 1, 1, 200, 6)

	tbl := NewTable(0, sessions, 0)
	v, err := BuildView(tbl, metric.BufRatio, thresholds(20))
	if err != nil {
		t.Fatal(err)
	}

	problem := func(pairs map[attr.Dim]int32) bool {
		_, ok := v.Problem[attr.NewKey(pairs)]
		return ok
	}
	if !problem(map[attr.Dim]int32{attr.ASN: 0, attr.CDN: 0}) {
		t.Error("big bad cell should be a problem cluster")
	}
	if problem(map[attr.Dim]int32{attr.ASN: 0, attr.CDN: 1}) {
		t.Error("tiny cell must be culled by the size floor")
	}
	if problem(map[attr.Dim]int32{attr.CDN: 1}) {
		t.Error("healthy CDN2 flagged as problem")
	}
	if !problem(map[attr.Dim]int32{attr.ASN: 0}) {
		t.Error("ASN1 should be a problem cluster (mostly bad sessions)")
	}
}

func TestBuildViewGlobals(t *testing.T) {
	var sessions []Lite
	sessions = addCell(sessions, 0, 0, 50, 10)
	sessions = addCell(sessions, 1, 1, 50, 0)
	tbl := NewTable(0, sessions, 0)
	v, err := BuildView(tbl, metric.BufRatio, thresholds(20))
	if err != nil {
		t.Fatal(err)
	}
	if v.GlobalSessions != 100 || v.GlobalProblems != 10 {
		t.Errorf("globals = %d/%d", v.GlobalSessions, v.GlobalProblems)
	}
	if v.GlobalRatio != 0.1 || math.Abs(v.Threshold-0.15) > 1e-12 {
		t.Errorf("ratio/threshold = %v/%v", v.GlobalRatio, v.Threshold)
	}
	if _, err := BuildView(tbl, metric.BufRatio, metric.Thresholds{}); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestBuildViewZeroProblems(t *testing.T) {
	var sessions []Lite
	sessions = addCell(sessions, 0, 0, 50, 0)
	tbl := NewTable(0, sessions, 0)
	v, err := BuildView(tbl, metric.BufRatio, thresholds(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Problem) != 0 {
		t.Error("problem clusters without any problem sessions")
	}
}

func TestJoinFailureExcludesNothing(t *testing.T) {
	// Failed sessions count for JoinFailure but not for BufRatio.
	var sessions []Lite
	for i := 0; i < 40; i++ {
		var l Lite
		l.Attrs[attr.ASN] = 0
		l.Failed = true
		l.Bits |= 1 << metric.JoinFailure
		sessions = append(sessions, l)
	}
	sessions = addCell(sessions, 0, 0, 60, 0)
	tbl := NewTable(0, sessions, 0)

	jf, _ := BuildView(tbl, metric.JoinFailure, thresholds(20))
	if jf.GlobalSessions != 100 || jf.GlobalProblems != 40 {
		t.Errorf("join failure globals = %d/%d", jf.GlobalSessions, jf.GlobalProblems)
	}
	buf, _ := BuildView(tbl, metric.BufRatio, thresholds(20))
	if buf.GlobalSessions != 60 || buf.GlobalProblems != 0 {
		t.Errorf("buffering globals = %d/%d", buf.GlobalSessions, buf.GlobalProblems)
	}
}

// TestProblemRatioBoundary pins the 1.5× rule at its exact boundary: a
// cluster whose problem ratio equals factor × global — with the threshold
// derived through the same multiplication BuildView performs, so it may sit
// one ulp off the quotient — is a problem cluster, and a cluster one
// session short is not.
func TestProblemRatioBoundary(t *testing.T) {
	global := 1.0 / 3.0
	v := &View{
		Metric:      metric.BufRatio,
		GlobalRatio: global,
		Threshold:   1.5 * global, // = 0.5, up to one ulp
		MinSessions: 50,
	}
	if !v.IsProblemCounts(100, 50) {
		t.Error("cluster at exactly 1.5× the global ratio must be a problem cluster")
	}
	if v.IsProblemCounts(100, 49) {
		t.Error("cluster below 1.5× the global ratio must not be a problem cluster")
	}
	if v.IsProblemCounts(49, 25) {
		t.Error("cluster under the size floor must not be a problem cluster")
	}
}

func TestProblemSessionsInClusters(t *testing.T) {
	var sessions []Lite
	// One concentrated problem cell plus diffuse low-rate background
	// problems spread over distinct ASNs (each too small to cluster).
	sessions = addCell(sessions, 0, 0, 100, 50)
	for i := int32(10); i < 40; i++ {
		sessions = addCell(sessions, i, 1, 5, 1)
	}
	tbl := NewTable(0, sessions, 0)
	v, _ := BuildView(tbl, metric.BufRatio, thresholds(20))
	got := v.ProblemSessionsInClusters()
	// The 50 concentrated problems are inside problem clusters; whether the
	// diffuse ones land in one depends on the CDN=1 aggregate, which has
	// ratio 0.5 — significant. Verify at least the concentrated ones and
	// never more than the global problem count.
	if got < 50 || got > v.GlobalProblems {
		t.Errorf("covered = %d, global = %d", got, v.GlobalProblems)
	}
}

// Property: for random small session sets, every problem cluster must meet
// both significance conditions, and counts must be internally consistent.
func TestProblemClusterProperty(t *testing.T) {
	f := func(cells [4]uint8, probs [4]uint8) bool {
		var sessions []Lite
		for i := 0; i < 4; i++ {
			n := int(cells[i]%40) + 21 // ensure significance is possible
			p := int(probs[i]) % (n + 1)
			sessions = addCell(sessions, int32(i/2), int32(i%2), n, p)
		}
		tbl := NewTable(0, sessions, 0)
		v, err := BuildView(tbl, metric.BufRatio, thresholds(20))
		if err != nil {
			return false
		}
		for k, c := range v.Problem {
			if c.Sessions(metric.BufRatio) < v.MinSessions {
				return false
			}
			if c.Ratio(metric.BufRatio) < v.Threshold {
				return false
			}
			if tbl.Get(k) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
