// Differential harness for the sharded aggregation path: NewTableParallel
// must be indistinguishable from NewTable for every worker count — same
// root, same cardinality, same cells both ways — and the full sharded
// AnalyzeEpoch must reproduce the serial epoch result bit for bit,
// including the float attribution tallies, for any worker count and across
// pooled-table reuse.
package cluster_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
)

// assertTablesEqual compares two tables cell-for-cell in both lookup
// directions, so an extra key in either one is caught.
func assertTablesEqual(t *testing.T, label string, got, want *cluster.Table) {
	t.Helper()
	if got.Root != want.Root {
		t.Fatalf("%s: root %+v != %+v", label, got.Root, want.Root)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d != %d", label, got.Len(), want.Len())
	}
	got.ForEach(func(k attr.Key, c cluster.Counts) {
		if w := want.Get(k); w != c {
			t.Fatalf("%s: key %v sharded %+v serial %+v", label, k, c, w)
		}
	})
	want.ForEach(func(k attr.Key, c cluster.Counts) {
		if g := got.Get(k); g != c {
			t.Fatalf("%s: key %v serial %+v sharded %+v", label, k, c, g)
		}
	})
}

// TestShardedTableVsSerial: for randomized epochs across shapes, the
// sharded table build agrees with the serial build for worker counts 1..8.
func TestShardedTableVsSerial(t *testing.T) {
	trials := []struct {
		seed     int64
		sessions int
		card     int32
		maxDims  int
	}{
		{seed: 21, sessions: 700, card: 3, maxDims: 0},
		{seed: 22, sessions: 400, card: 2, maxDims: 0},
		{seed: 23, sessions: 900, card: 4, maxDims: 3},
		{seed: 24, sessions: 60, card: 8, maxDims: 0}, // sparse, fewer sessions than some shard counts would like
		{seed: 25, sessions: 3, card: 2, maxDims: 2},  // fewer sessions than workers
	}
	for _, tr := range trials {
		rng := rand.New(rand.NewSource(tr.seed))
		lites := genLites(rng, tr.sessions, tr.card)
		serial := cluster.NewTable(9, lites, tr.maxDims)
		for workers := 1; workers <= 8; workers++ {
			sharded := cluster.NewTableParallel(9, lites, tr.maxDims, workers)
			assertTablesEqual(t, "trial", sharded, serial)
			if sharded.Epoch != serial.Epoch || sharded.MaxDims != serial.MaxDims {
				t.Fatalf("trial %d w=%d: metadata %d/%d vs %d/%d",
					tr.seed, workers, sharded.Epoch, sharded.MaxDims, serial.Epoch, serial.MaxDims)
			}
			sharded.Release()
		}
		serial.Release()
	}
}

// TestShardedAnalyzeEpochVsSerial: the full epoch analysis — problem views,
// critical clusters, attribution tallies, HHH-free observables, everything
// in EpochResult — is deeply equal between the serial path and the sharded
// path for every worker count. The epoch is sized above core's sharding
// volume gate so the parallel path genuinely runs.
func TestShardedAnalyzeEpochVsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lites := genLites(rng, 4000, 3)
	cfg := core.DefaultConfig(len(lites))
	cfg.Thresholds.MinClusterSessions = 25
	cfg.KeepProblemKeys = true
	cfg.Workers = 1
	serial, err := core.AnalyzeEpoch(9, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		cfg.Workers = workers
		sharded, err := core.AnalyzeEpoch(9, lites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("workers=%d: sharded epoch result differs from serial", workers)
		}
	}
}

// TestShardedPooledReuseDeterminism: repeated sharded analyses interleaved
// with differently-shaped epochs keep producing results identical to the
// first — pooled shard tables and shard-id buffers must not leak state.
func TestShardedPooledReuseDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lites := genLites(rng, 3000, 3)
	cfg := core.DefaultConfig(len(lites))
	cfg.Thresholds.MinClusterSessions = 20
	cfg.KeepProblemKeys = true
	cfg.Workers = 4
	first, err := core.AnalyzeEpoch(2, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := genLites(rng, 6000, 5)
	for i := 0; i < 3; i++ {
		// Dirty the pools with a larger epoch at a different worker count...
		bigCfg := cfg
		bigCfg.Workers = 7 - 2*i
		if _, err := core.AnalyzeEpoch(3, big, bigCfg); err != nil {
			t.Fatal(err)
		}
		// ...then the original epoch must still reproduce bit for bit.
		again, err := core.AnalyzeEpoch(2, lites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("round %d: sharded result drifted after pooled reuse", i+1)
		}
	}
}

// FuzzShardedVsSerial fuzzes byte-string-derived session sets across worker
// counts, catching shard-partition or merge edge cases the fixed trials
// miss (single-cell epochs, all-failed epochs, vectors that collide).
func FuzzShardedVsSerial(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(2), uint8(0))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 1, 2}, uint8(5), uint8(3))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, workers, maxDims uint8) {
		var lites []cluster.Lite
		for i := 0; i+7 < len(data); i += 8 {
			var l cluster.Lite
			for d := 0; d < attr.NumDims; d++ {
				l.Attrs[d] = int32(data[i+d] % 5)
			}
			ctl := data[i+7]
			l.Bits = ctl & 0x0f
			if ctl&0x10 != 0 {
				l.Failed = true
			}
			lites = append(lites, l)
		}
		if len(lites) == 0 {
			return
		}
		w := int(workers%8) + 1
		md := int(maxDims % (attr.NumDims + 1))
		serial := cluster.NewTable(0, lites, md)
		defer serial.Release()
		sharded := cluster.NewTableParallel(0, lites, md, w)
		defer sharded.Release()
		assertTablesEqual(t, "fuzz", sharded, serial)
	})
}
