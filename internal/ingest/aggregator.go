package ingest

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/cktable"
	"repro/internal/epoch"
	"repro/internal/heartbeat"
	"repro/internal/online"
	"repro/internal/session"
)

// Coverage stamps one sealed epoch with how much of the fleet actually
// reported into it. The paper's clustering math is only as trustworthy as
// its denominator; a node dying mid-epoch silently shrinks every cluster it
// fed, so the aggregator records the loss explicitly and lets the online
// detector freeze — not resolve — its alert streaks across the hole.
type Coverage struct {
	Epoch epoch.Index
	// Sessions is the number of unique sessions merged into the epoch.
	Sessions int
	// NodesReporting / ExpectNodes measure fleet participation: how many
	// distinct nodes contributed at least one session vs. the configured
	// fleet size (0 = unknown, participation not judged).
	NodesReporting int
	ExpectNodes    int
	// Duplicates counts re-delivered sessions dropped idempotently (ack
	// retries, recovered-segment replays after a node restart).
	Duplicates int
	// Restarts counts node incarnation bumps observed while the epoch was
	// open — each one means some in-flight state died with a process.
	Restarts int
	// RelayShed / SpoolShed attribute fleet-reported losses (from KindStatus
	// deltas) to this epoch, coarsely: losses are charged to the epoch
	// sealed when the report arrives, since a dead session carries no epoch.
	RelayShed uint64
	SpoolShed uint64
	// Salvaged / Recovered are the fleet's cumulative repair counters at
	// seal time (salvage = half-reported sessions flushed as join failures,
	// recovered = sessions re-read from disk after a restart).
	Salvaged  uint64
	Recovered uint64
	// Degraded marks the epoch untrustworthy: a restart, a silent node,
	// reported shedding, or zero sessions. Degraded epochs freeze the
	// detector's streaks (GapEpochs) instead of resolving them.
	Degraded bool
	// Starved marks Sessions < MinEpochSessions (the detector would gate it
	// even if nothing visibly failed).
	Starved bool
}

// AggregatorConfig shapes the central aggregator.
type AggregatorConfig struct {
	// Analysis configures the per-epoch clustering run on sealed tables.
	Analysis core.Config
	// ExpectNodes is the fleet size for coverage judgments (0 = unknown).
	ExpectNodes int
	// MinEpochSessions feeds the detector's starvation gate.
	MinEpochSessions int
	// ReadIdleTimeout bounds the gap between frames on one relay
	// connection (default 2m; zero disables).
	ReadIdleTimeout time.Duration
	// OnSeal observes every sealed epoch (nil ignores). Called in seal
	// order with the coverage record and the analysis result (nil when the
	// epoch was degraded or starved — frozen, not analysed).
	OnSeal func(Coverage, *core.EpochResult)
	// Emit receives detector alerts (nil drops them).
	Emit func(online.Alert)
	// Logf receives diagnostics (default log.Printf; set to silence).
	Logf func(format string, args ...any)
}

// nodeState tracks one collector node across its incarnations.
type nodeState struct {
	incarnation uint64
	lastStatus  [4]uint64
	restarts    int
}

// nodePartial is one node's contribution to one open epoch: its partial
// count table plus the session digests backing it, kept per node so the
// merged table can be assembled in a canonical (sorted node ID) order.
type nodePartial struct {
	ck    *cktable.Table
	ids   []uint64
	lites []cluster.Lite
}

// epochState is one open (unsealed) epoch.
type epochState struct {
	seen     map[uint64]struct{} // session IDs merged (dedup across re-delivery)
	nodes    map[uint64]*nodePartial
	dups     int
	restarts int
}

// Aggregator is the central merge point of the ingestion tier. Relay nodes
// stream assembled session records (KindSession) and loss counters
// (KindStatus) over acked heartbeat connections; the aggregator folds each
// session into its epoch's per-node partial count table, deduplicating
// re-deliveries, and on Seal merges the partials, analyses the epoch, and
// feeds the result — with its Coverage stamp — to an online detector that
// freezes alert streaks across degraded epochs.
//
// Late, duplicate, and reordered partials are tolerated idempotently: a
// session re-sent after an ack was lost, or replayed from a recovered disk
// segment, merges exactly once; a session arriving for an already-sealed
// epoch is counted and dropped.
type Aggregator struct {
	cfg AggregatorConfig
	det *online.Detector

	mu       sync.Mutex
	nodes    map[uint64]*nodeState
	partials map[epoch.Index]*epochState
	// attributed snapshots how much of the fleet's cumulative shed counters
	// has already been charged to sealed epochs; the delta since goes to
	// the next seal.
	attributed    [4]uint64
	coverages     []Coverage
	sealedAny     bool
	sealedThrough epoch.Index

	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	connsAccepted  atomic.Int64
	framesHandled  atomic.Int64
	protocolErrors atomic.Int64
	acceptErrors   atomic.Int64
	handlerPanics  atomic.Int64
	forceClosed    atomic.Int64
	lateSessions   atomic.Int64
	dupSessions    atomic.Int64
}

// AggStats is a snapshot of aggregator counters.
type AggStats struct {
	ConnsAccepted  int64
	FramesHandled  int64
	ProtocolErrors int64
	AcceptErrors   int64
	HandlerPanics  int64
	ForceClosed    int64
	// LateSessions arrived for already-sealed epochs and were dropped.
	LateSessions int64
	// DupSessions were re-deliveries of already-merged sessions.
	DupSessions int64
}

// NewAggregator builds an aggregator; the detector is wired to cfg.Emit.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	emit := cfg.Emit
	if emit == nil {
		emit = func(online.Alert) {}
	}
	det, err := online.NewDetector(cfg.Analysis, emit)
	if err != nil {
		return nil, err
	}
	det.MinEpochSessions = cfg.MinEpochSessions
	if cfg.ReadIdleTimeout == 0 {
		cfg.ReadIdleTimeout = 2 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Aggregator{
		cfg:      cfg,
		det:      det,
		nodes:    make(map[uint64]*nodeState),
		partials: make(map[epoch.Index]*epochState),
		conns:    make(map[net.Conn]bool),
	}, nil
}

// Detector exposes the online detector (tests read its counters).
func (a *Aggregator) Detector() *online.Detector { return a.det }

// Stats returns current counters.
func (a *Aggregator) Stats() AggStats {
	return AggStats{
		ConnsAccepted:  a.connsAccepted.Load(),
		FramesHandled:  a.framesHandled.Load(),
		ProtocolErrors: a.protocolErrors.Load(),
		AcceptErrors:   a.acceptErrors.Load(),
		HandlerPanics:  a.handlerPanics.Load(),
		ForceClosed:    a.forceClosed.Load(),
		LateSessions:   a.lateSessions.Load(),
		DupSessions:    a.dupSessions.Load(),
	}
}

// RegisterNode records a node announcement. A higher incarnation than the
// last seen means the node restarted: every open epoch is marked restarted,
// because in-flight state (kernel buffers, pending assembler sessions) died
// with the old process and those epochs can no longer claim full coverage.
func (a *Aggregator) RegisterNode(nodeID, incarnation uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := a.nodes[nodeID]
	if ns == nil {
		ns = &nodeState{incarnation: incarnation}
		a.nodes[nodeID] = ns
		return
	}
	if incarnation > ns.incarnation {
		ns.incarnation = incarnation
		ns.restarts++
		for _, es := range a.partials {
			es.restarts++
		}
	}
}

// UpdateStatus records a node's cumulative loss counters (KindStatus).
func (a *Aggregator) UpdateStatus(nodeID uint64, st [4]uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := a.nodes[nodeID]
	if ns == nil {
		ns = &nodeState{}
		a.nodes[nodeID] = ns
	}
	// Counters are cumulative per node ID across incarnations (the relay
	// carries recovered/shed forward only within one process, but a restart
	// can only ever lower a reading — never double-charge — so take the max).
	for i := range st {
		if st[i] > ns.lastStatus[i] {
			ns.lastStatus[i] = st[i]
		}
	}
}

// Ingest merges one assembled session from a node into its epoch's partial
// state. Idempotent: duplicates (lost-ack retries, recovered-segment
// replays) and late arrivals (epoch already sealed) are counted and
// dropped, never double-merged.
func (a *Aggregator) Ingest(nodeID uint64, s *session.Session) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := s.Epoch
	if a.sealedAny && e <= a.sealedThrough {
		a.lateSessions.Add(1)
		return
	}
	es := a.partials[e]
	if es == nil {
		es = &epochState{
			seen:  make(map[uint64]struct{}),
			nodes: make(map[uint64]*nodePartial),
		}
		a.partials[e] = es
	}
	if _, dup := es.seen[s.ID]; dup {
		es.dups++
		a.dupSessions.Add(1)
		return
	}
	es.seen[s.ID] = struct{}{}
	pn := es.nodes[nodeID]
	if pn == nil {
		pn = &nodePartial{ck: cktable.Acquire(64, a.cfg.Analysis.MaxDims)}
		es.nodes[nodeID] = pn
	}
	l := cluster.Digest(s, a.cfg.Analysis.Thresholds)
	pn.ck.AddSession(l.Attrs, l.Bits, l.Failed)
	pn.ids = append(pn.ids, s.ID)
	pn.lites = append(pn.lites, l)
}

// EpochSessions reports how many unique sessions an open epoch has merged
// so far (0 once sealed or never seen). Tests poll it to time fault
// injection mid-epoch.
func (a *Aggregator) EpochSessions(e epoch.Index) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	es := a.partials[e]
	if es == nil {
		return 0
	}
	return len(es.seen)
}

// OpenEpochs returns the unsealed epochs with merged sessions, ascending.
func (a *Aggregator) OpenEpochs() []epoch.Index {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]epoch.Index, 0, len(a.partials))
	for e := range a.partials {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coverages returns the coverage records of all sealed epochs, in seal
// order.
func (a *Aggregator) Coverages() []Coverage {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Coverage, len(a.coverages))
	copy(out, a.coverages)
	return out
}

// Seal closes one epoch: merges its per-node partial tables (sorted node
// order, so the merged table is independent of arrival interleaving),
// analyses the merged table, stamps a Coverage record, and feeds the
// detector. Epochs must seal in ascending order.
func (a *Aggregator) Seal(e epoch.Index) (Coverage, *core.EpochResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sealLocked(e)
}

// SealThrough seals every epoch up to and including e, in order, including
// holes (epochs nothing reported into — sealed as empty, degraded).
func (a *Aggregator) SealThrough(e epoch.Index) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	start := a.sealedThrough + 1
	if !a.sealedAny {
		start = a.lowestOpenLocked()
		if start > e || len(a.partials) == 0 {
			start = e // nothing earlier to cover; seal just e
		}
	}
	for cur := start; cur <= e; cur++ {
		if _, _, err := a.sealLocked(cur); err != nil {
			return err
		}
	}
	return nil
}

// SealAll seals every open epoch in ascending order (holes between them
// included).
func (a *Aggregator) SealAll() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.partials) == 0 {
		return nil
	}
	hi := epoch.Index(0)
	for e := range a.partials {
		if e > hi {
			hi = e
		}
	}
	start := a.sealedThrough + 1
	if !a.sealedAny {
		start = a.lowestOpenLocked()
	}
	for cur := start; cur <= hi; cur++ {
		if _, _, err := a.sealLocked(cur); err != nil {
			return err
		}
	}
	return nil
}

func (a *Aggregator) lowestOpenLocked() epoch.Index {
	first := true
	lo := epoch.Index(0)
	for e := range a.partials {
		if first || e < lo {
			lo, first = e, false
		}
	}
	return lo
}

func (a *Aggregator) sealLocked(e epoch.Index) (Coverage, *core.EpochResult, error) {
	if a.sealedAny && e <= a.sealedThrough {
		return Coverage{}, nil, fmt.Errorf("ingest: epoch %d already sealed (through %d)", e, a.sealedThrough)
	}
	es := a.partials[e]
	delete(a.partials, e)

	cov := Coverage{Epoch: e, ExpectNodes: a.cfg.ExpectNodes}
	// Charge status-counter growth since the last seal to this epoch. The
	// attribution is coarse — a shed session carries no epoch — but the
	// conservation ledger stays exact: every loss lands on exactly one seal.
	var fleet [4]uint64
	for _, ns := range a.nodes {
		for i := range fleet {
			fleet[i] += ns.lastStatus[i]
		}
	}
	cov.RelayShed = fleet[StatusRelayShed] - a.attributed[StatusRelayShed]
	cov.SpoolShed = fleet[StatusSpoolShed] - a.attributed[StatusSpoolShed]
	cov.Salvaged = fleet[StatusSalvaged]
	cov.Recovered = fleet[StatusRecovered]
	a.attributed[StatusRelayShed] = fleet[StatusRelayShed]
	a.attributed[StatusSpoolShed] = fleet[StatusSpoolShed]

	var res *core.EpochResult
	if es != nil {
		cov.Sessions = len(es.seen)
		cov.NodesReporting = len(es.nodes)
		cov.Duplicates = es.dups
		cov.Restarts = es.restarts
	}
	cov.Degraded = cov.Restarts > 0 ||
		(cov.ExpectNodes > 0 && cov.NodesReporting < cov.ExpectNodes) ||
		cov.RelayShed > 0 || cov.SpoolShed > 0 ||
		cov.Sessions == 0
	cov.Starved = a.cfg.MinEpochSessions > 0 && cov.Sessions < a.cfg.MinEpochSessions

	if es != nil && cov.Sessions > 0 && !cov.Degraded && !cov.Starved {
		// Merge per-node partials in sorted node-ID order so the merged
		// table — and the float attribution order below — is a pure
		// function of the session set, not of network interleaving.
		nodeIDs := make([]uint64, 0, len(es.nodes))
		total := 0
		for id, pn := range es.nodes {
			nodeIDs = append(nodeIDs, id)
			total += len(pn.lites)
		}
		sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
		//vqlint:ignore-start poolrelease ownership of merged passes to the Table AssembleTable builds; tbl.Release frees it on every subsequent path
		merged := cktable.Acquire(total, a.cfg.Analysis.MaxDims)
		type idLite struct {
			id uint64
			l  cluster.Lite
		}
		all := make([]idLite, 0, total)
		for _, id := range nodeIDs {
			pn := es.nodes[id]
			merged.Merge(pn.ck)
			pn.ck.Release()
			for i := range pn.ids {
				all = append(all, idLite{pn.ids[i], pn.lites[i]})
			}
		}
		// Canonical session order: by session ID. The per-metric view
		// passes sum float ratios across sessions; a fixed order makes the
		// merged path bit-identical to a single-collector build fed the
		// same order.
		sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
		lites := make([]cluster.Lite, len(all))
		var root cluster.Counts
		for i := range all {
			lites[i] = all[i].l
			root.Add(all[i].l.Bits, all[i].l.Failed)
		}
		tbl := cluster.AssembleTable(e, lites, a.cfg.Analysis.MaxDims, merged, root)
		r, err := core.AnalyzeEpochTable(tbl, a.cfg.Analysis)
		tbl.Release()
		if err != nil {
			return cov, nil, fmt.Errorf("ingest: seal epoch %d: %w", e, err)
		}
		res = r
	} else if es != nil {
		// Degraded or starved: the partial tables are discarded unanalysed;
		// the detector freezes rather than acting on a biased sample.
		for _, pn := range es.nodes {
			pn.ck.Release()
		}
	}

	if err := a.det.ObserveResult(e, res, cov.Sessions, cov.Degraded); err != nil {
		return cov, nil, fmt.Errorf("ingest: seal epoch %d: %w", e, err)
	}
	a.sealedAny = true
	a.sealedThrough = e
	a.coverages = append(a.coverages, cov)
	if a.cfg.OnSeal != nil {
		a.cfg.OnSeal(cov, res)
	}
	return cov, res, nil
	//vqlint:ignore-end
}

// Listen starts accepting relay connections on addr.
func (a *Aggregator) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return a.Serve(ln)
}

// Serve accepts relay connections from an existing listener.
func (a *Aggregator) Serve(ln net.Listener) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = ln.Close()
		return errors.New("ingest: aggregator closed")
	}
	a.ln = ln
	a.mu.Unlock()
	a.wg.Add(1)
	go a.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address (nil before Serve).
func (a *Aggregator) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

func (a *Aggregator) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

func (a *Aggregator) acceptLoop(ln net.Listener) {
	defer a.wg.Done()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return
			}
			if a.isClosed() {
				return
			}
			a.acceptErrors.Add(1)
			if a.cfg.Logf != nil {
				a.cfg.Logf("ingest: aggregator accept: %v", err)
			}
			if backoff < time.Millisecond {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		a.connsAccepted.Add(1)
		a.mu.Lock()
		a.conns[conn] = true
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.serveConn(conn)
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

// serveConn decodes one relay stream. Protocol: the first frame must be a
// control Hello (ControlSessionBit set) announcing the node ID and
// incarnation; KindSession frames then carry assembled sessions and
// KindStatus frames cumulative loss counters. Acked frames are
// acknowledged only after the session is durably merged (or recognized as
// a duplicate), so a relay retiring a segment knows its sessions are in.
func (a *Aggregator) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			a.handlerPanics.Add(1)
			if a.cfg.Logf != nil {
				a.cfg.Logf("ingest: aggregator handler panic (connection dropped): %v\n%s", r, debug.Stack())
			}
		}
	}()
	r := heartbeat.NewReader(conn)
	var (
		ackW   *heartbeat.Writer
		nodeID uint64
		hello  bool
		m      heartbeat.Message
	)
	for {
		if a.cfg.ReadIdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(a.cfg.ReadIdleTimeout)); err != nil {
				return
			}
		}
		if err := r.Read(&m); err != nil {
			if err != io.EOF && a.cfg.Logf != nil {
				a.cfg.Logf("ingest: aggregator connection: %v", err)
			}
			return
		}
		a.framesHandled.Add(1)
		if !hello {
			if m.Kind != heartbeat.KindHello || m.SessionID&heartbeat.ControlSessionBit == 0 {
				a.protocolErrors.Add(1)
				if a.cfg.Logf != nil {
					a.cfg.Logf("ingest: aggregator: first frame %v, want control hello (connection dropped)", m.Kind)
				}
				return
			}
			nodeID = m.SessionID &^ heartbeat.ControlSessionBit
			var inc uint64
			if len(m.Attrs) > 0 {
				inc = uint64(uint32(m.Attrs[0]))
			}
			a.RegisterNode(nodeID, inc)
			if m.AckMode {
				ackW = heartbeat.NewWriter(conn)
			}
			hello = true
			continue
		}
		switch m.Kind {
		case heartbeat.KindSession:
			a.Ingest(nodeID, &m.Sess)
		case heartbeat.KindStatus:
			a.UpdateStatus(nodeID, m.Status)
			continue // status frames are unacked fire-and-forget
		case heartbeat.KindHello:
			// A re-announce (sender reconnect replay); refresh the
			// incarnation. Hellos are never acked — the sender does not
			// await one, and an unsolicited ack would desync its ack stream.
			if m.SessionID&heartbeat.ControlSessionBit != 0 {
				var inc uint64
				if len(m.Attrs) > 0 {
					inc = uint64(uint32(m.Attrs[0]))
				}
				a.RegisterNode(nodeID, inc)
			}
			continue
		default:
			a.protocolErrors.Add(1)
			if a.cfg.Logf != nil {
				a.cfg.Logf("ingest: aggregator: unexpected %v frame", m.Kind)
			}
			continue
		}
		if ackW != nil {
			if err := conn.SetWriteDeadline(time.Now().Add(5 * time.Second)); err != nil {
				return
			}
			if err := ackW.Write(&heartbeat.Message{Kind: heartbeat.KindAck, SessionID: m.SessionID}); err != nil {
				if a.cfg.Logf != nil {
					a.cfg.Logf("ingest: aggregator ack write: %v (connection dropped)", err)
				}
				return
			}
		}
	}
}

// Close shuts the accept plane down, giving live relay connections up to
// grace to drain. It does not seal epochs — call SealAll (or SealThrough)
// after Close so every delivered session is merged first.
func (a *Aggregator) CloseGrace(grace time.Duration) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return errors.New("ingest: aggregator already closed")
	}
	a.closed = true
	ln := a.ln
	a.mu.Unlock()

	var closeErr error
	if ln != nil {
		if tl, ok := ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(time.Now().Add(150 * time.Millisecond)); err != nil {
				closeErr = ln.Close()
				ln = nil
			}
		} else {
			closeErr = ln.Close()
			ln = nil
		}
	}
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		a.mu.Lock()
		for conn := range a.conns {
			a.forceClosed.Add(1)
			_ = conn.Close()
		}
		a.mu.Unlock()
		<-done
	}
	if ln != nil {
		if err := ln.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	return closeErr
}

// Close is CloseGrace with a ten-second drain.
func (a *Aggregator) Close() error { return a.CloseGrace(10 * time.Second) }
