package ingest

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/testutil"
)

// startTestAggregator brings up an aggregator on an ephemeral port and
// returns it with a dial function for relays.
func startTestAggregator(t *testing.T, expectNodes int) (*Aggregator, func() (net.Conn, error)) {
	t.Helper()
	agg, err := NewAggregator(AggregatorConfig{
		Analysis:    testAnalysis(64),
		ExpectNodes: expectNodes,
		Logf:        nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := agg.Addr().String()
	return agg, func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestRelayShipsSealedSegments(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	agg, dial := startTestAggregator(t, 1)

	r, err := NewRelay(dial, RelayConfig{
		Dir:         t.TempDir(),
		NodeID:      7,
		RotateEvery: 4,
		Sender:      fastSenderConfig(1),
		StatusFn:    func() [4]uint64 { return [4]uint64{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for id := uint64(1); id <= n; id++ {
		r.Offer(mkSession(id, 0))
	}
	// 10 sessions at RotateEvery 4: two sealed segments ship immediately,
	// two sessions sit in the active segment until Close seals it.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "all sessions at aggregator", func() bool {
		return agg.EpochSessions(0) == n
	})
	rs := r.Stats()
	if rs.Sent != n || rs.Shed != 0 || rs.Abandoned != 0 || rs.Recovered != 0 {
		t.Fatalf("relay stats %+v, want %d sent and nothing lost", rs, n)
	}
	if rs.SegmentsSealed != 3 {
		t.Fatalf("sealed %d segments, want 3 (two rotations + close)", rs.SegmentsSealed)
	}
	if err := agg.CloseGrace(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cov, res, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Sessions != n || cov.NodesReporting != 1 || cov.Degraded || res == nil {
		t.Fatalf("coverage %+v, want %d healthy sessions from 1 node", cov, n)
	}
}

// TestRelayRecoversSegmentsAfterKill is the crash-recovery path: a relay
// killed with the aggregator unreachable leaves its segments on disk; the
// next incarnation recovers and delivers them.
func TestRelayRecoversSegmentsAfterKill(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	dir := t.TempDir()
	down := func() (net.Conn, error) { return nil, errors.New("aggregator down") }

	r1, err := NewRelay(down, RelayConfig{
		Dir:         dir,
		NodeID:      7,
		RotateEvery: 4,
		Sender:      fastSenderConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for id := uint64(1); id <= n; id++ {
		r1.Offer(mkSession(id, 0))
	}
	r1.Kill() // two sealed segments + a 2-session active segment stay on disk
	if got := r1.Stats().Sent; got != 0 {
		t.Fatalf("sent %d sessions with the aggregator down", got)
	}

	agg, dial := startTestAggregator(t, 1)
	r2, err := NewRelay(dial, RelayConfig{
		Dir:         dir,
		NodeID:      7,
		Incarnation: 1,
		RotateEvery: 4,
		Sender:      fastSenderConfig(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats().Recovered; got != n {
		t.Fatalf("recovered %d sessions, want %d (active segment's flushed records included)", got, n)
	}
	waitFor(t, 10*time.Second, "recovered sessions at aggregator", func() bool {
		return agg.EpochSessions(0) == n
	})
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := agg.CloseGrace(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cov, _, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Sessions != n {
		t.Fatalf("aggregator merged %d sessions, want %d", cov.Sessions, n)
	}
	// The restart was announced: incarnation 1 on a node first seen at 0
	// would mark open epochs, but this aggregator only ever saw incarnation
	// 1 — no restart recorded, epoch healthy except the coverage facts.
	if cov.Recovered != uint64(0) && cov.Recovered != uint64(n) {
		t.Fatalf("recovered counter %d, want 0 (no StatusFn) or %d", cov.Recovered, n)
	}
}

// TestRelayOverflowShedsOldest: the sealed-segment backlog is bounded;
// overflow drops the oldest segment with exact shed accounting.
func TestRelayOverflowShedsOldest(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	down := func() (net.Conn, error) { return nil, errors.New("aggregator down") }
	r, err := NewRelay(down, RelayConfig{
		Dir:         t.TempDir(),
		NodeID:      7,
		RotateEvery: 2,
		MaxSegments: 2,
		Sender:      fastSenderConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 8; id++ {
		r.Offer(mkSession(id, 0))
	}
	rs := r.Stats()
	if rs.SegmentsSealed != 4 || rs.SegmentsDropped != 2 || rs.Shed != 4 {
		t.Fatalf("stats %+v, want 4 sealed, 2 dropped, 4 shed", rs)
	}
	if rs.QueueSegments != 2 {
		t.Fatalf("queue holds %d segments, want 2", rs.QueueSegments)
	}
	r.Kill()
	if rs := r.Stats(); rs.Offered != 8 {
		t.Fatalf("offered %d, want 8", rs.Offered)
	}
}

// TestRelayStatusReachesAggregator: StatusFn counters ride KindStatus
// frames and land in coverage records.
func TestRelayStatusReachesAggregator(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	agg, dial := startTestAggregator(t, 1)
	r, err := NewRelay(dial, RelayConfig{
		Dir:         t.TempDir(),
		NodeID:      3,
		RotateEvery: 4,
		Sender:      fastSenderConfig(9),
		StatusFn: func() [4]uint64 {
			return [4]uint64{StatusSpoolShed: 2, StatusSalvaged: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		r.Offer(mkSession(id, 0))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "sessions at aggregator", func() bool {
		return agg.EpochSessions(0) == 4
	})
	if err := agg.CloseGrace(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	cov, res, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.SpoolShed != 2 || cov.Salvaged != 1 {
		t.Fatalf("coverage %+v, want spool shed 2 and salvaged 1", cov)
	}
	if !cov.Degraded || res != nil {
		t.Fatalf("reported shedding must degrade the epoch: %+v", cov)
	}
}
