package ingest

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/faultnet"
	"repro/internal/heartbeat"
	"repro/internal/testutil"
)

// startNodeAt starts (or restarts) a node, retrying briefly — a restart
// rebinds the address its previous incarnation just released.
func startNodeAt(t *testing.T, id, inc uint64, addr, dir string, rotateEvery int, aggDial func() (net.Conn, error)) *Node {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := StartNode(NodeConfig{
			ID:            id,
			Incarnation:   inc,
			SpoolDir:      dir,
			Aggregator:    aggDial,
			ListenAddr:    addr,
			SpoolCapacity: 1024,
			RotateEvery:   rotateEvery,
			Sender:        fastSenderConfig(id*100 + inc),
		})
		if err == nil {
			return n
		}
		if time.Now().After(deadline) {
			t.Fatalf("starting node %d at %s: %v", id, addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// faultConns collects fault-injecting connections across players so the
// soak can prove fault classes actually fired.
type faultConns struct {
	mu    sync.Mutex
	conns []*faultnet.Conn
}

func (f *faultConns) add(c *faultnet.Conn) {
	f.mu.Lock()
	f.conns = append(f.conns, c)
	f.mu.Unlock()
}

func (f *faultConns) total() faultnet.ConnStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out faultnet.ConnStats
	for _, c := range f.conns {
		s := c.Stats()
		out.Stalls += s.Stalls
		out.Resets += s.Resets
		out.PartialWrites += s.PartialWrites
		out.Corruptions += s.Corruptions
	}
	return out
}

// spawnPlayers reports one session per ID through the ring, each player an
// ack-mode sender that re-resolves its owner on every (re)connect. The
// returned WaitGroup completes when every player has delivered (or given
// up, counted in abandoned).
func spawnPlayers(ring *Ring, e epoch.Index, ids []uint64, seed uint64, faults *faultConns, fcfgBase faultnet.Config, abandoned *sync.Map) *sync.WaitGroup {
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			sess := mkSession(id, e)
			fcfg := fcfgBase
			fcfg.Seed = seed + id
			var nextConn uint64
			dial := ring.Dialer(id, func(member string) (net.Conn, error) {
				raw, err := net.Dial("tcp", member)
				if err != nil {
					return nil, err
				}
				if faults == nil {
					return raw, nil
				}
				nextConn++
				fc := faultnet.WrapConn(raw, fcfg, nextConn)
				faults.add(fc)
				return fc, nil
			})
			snd := heartbeat.NewSender(dial, heartbeat.SenderConfig{
				BaseBackoff: 500 * time.Microsecond,
				MaxBackoff:  10 * time.Millisecond,
				MaxAttempts: 400,
				Seed:        seed + id,
				AckMode:     true,
			})
			snd.Logf = nil
			defer snd.Close()
			if err := snd.EmitSession(&sess, 2); err != nil {
				abandoned.Store(id, err)
			}
		}(id)
	}
	return &wg
}

// rotateAndWait polls cond, nudging every node's relay to seal and ship its
// active segment between polls (sessions land in the active segment
// asynchronously after the player's ack, so a single rotation can race the
// spool drain).
func rotateAndWait(t *testing.T, nodes []*Node, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		for _, n := range nodes {
			n.Relay().Rotate()
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNodeKillRecoversSpooledSessions is the deterministic kill/recovery
// check: a node dies holding every one of its sessions in the disk spool
// (RotateEvery high enough that nothing shipped), and the next incarnation
// recovers and delivers exactly that set — no loss, no surplus — while the
// aggregator degrades the epoch the restart interrupted.
func TestNodeKillRecoversSpooledSessions(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	const n = 45

	agg, err := NewAggregator(AggregatorConfig{Analysis: testAnalysis(n), ExpectNodes: 3, Logf: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	aggAddr := agg.Addr().String()
	aggDial := func() (net.Conn, error) { return net.Dial("tcp", aggAddr) }

	dirs := map[uint64]string{1: t.TempDir(), 2: t.TempDir(), 3: t.TempDir()}
	nodes := make(map[string]*Node) // member addr → node
	memberID := make(map[string]uint64)
	ring := NewRing(0)
	for id := uint64(1); id <= 3; id++ {
		// RotateEvery 1000: nothing ships on its own; this test controls
		// every shipment via Rotate so the kill point is exact.
		nd := startNodeAt(t, id, 1, "127.0.0.1:0", dirs[id], 1000, aggDial)
		m := nd.Addr().String()
		nodes[m] = nd
		memberID[m] = id
		ring.Add(m)
	}

	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	var abandoned sync.Map
	spawnPlayers(ring, 0, ids, 0x0DD5EED, nil, faultnet.Config{}, &abandoned).Wait()
	abandoned.Range(func(k, v any) bool {
		t.Fatalf("player %v abandoned: %v", k, v)
		return false
	})

	// Pick the victim: the owner of session 1 (guaranteed to hold at least
	// one session); count what it owns.
	victimMember, _ := ring.Owner(1)
	victimOwned := 0
	for _, id := range ids {
		if m, _ := ring.Owner(id); m == victimMember {
			victimOwned++
		}
	}
	victim := nodes[victimMember]
	victimID := memberID[victimMember]
	var others []*Node
	for m, nd := range nodes {
		if m != victimMember {
			others = append(others, nd)
		}
	}

	// Ship the survivors' sessions so epoch 0 is open at the aggregator
	// before the restart announcement lands.
	rotateAndWait(t, others, 10*time.Second, "survivor sessions", func() bool {
		return agg.EpochSessions(0) == n-victimOwned
	})

	// Kill: every victim session is acked to its player but still on the
	// node — in the in-memory spool (drained to disk by the kill's
	// page-cache model) or the active segment. None shipped.
	victim.Kill()
	if got := victim.Stats().Relay.Sent; got != 0 {
		t.Fatalf("victim shipped %d sessions before the kill; test premise broken", got)
	}

	restarted := startNodeAt(t, victimID, 2, victimMember, dirs[victimID], 1000, aggDial)
	if got := restarted.Stats().Relay.Recovered; got != int64(victimOwned) {
		t.Fatalf("incarnation 2 recovered %d sessions, want exactly the %d the victim owned", got, victimOwned)
	}
	nodes[victimMember] = restarted

	all := []*Node{restarted}
	all = append(all, others...)
	rotateAndWait(t, all, 10*time.Second, "full epoch after recovery", func() bool {
		return agg.EpochSessions(0) == n
	})

	for _, nd := range nodes {
		if err := nd.Close(2 * time.Second); err != nil {
			t.Fatalf("closing node: %v", err)
		}
	}
	if err := agg.CloseGrace(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := agg.SealAll(); err != nil {
		t.Fatal(err)
	}
	covs := agg.Coverages()
	if len(covs) != 1 {
		t.Fatalf("sealed %d epochs, want 1", len(covs))
	}
	cov := covs[0]
	if cov.Sessions != n {
		t.Fatalf("conservation broken: %d unique sessions sealed, want %d", cov.Sessions, n)
	}
	if cov.Restarts == 0 || !cov.Degraded {
		t.Fatalf("restart mid-epoch must degrade: %+v", cov)
	}
	if agg.Detector().GapEpochs != 1 {
		t.Fatalf("detector gaps %d, want 1 (frozen, not resolved)", agg.Detector().GapEpochs)
	}
	// Nothing was shed anywhere: the kill lost zero acknowledged sessions.
	for m, nd := range nodes {
		st := nd.Stats()
		if st.Relay.Shed != 0 || st.Relay.Abandoned != 0 || st.Spool.Shed != 0 {
			t.Fatalf("node %s shed sessions: %+v", m, st)
		}
	}
	if st := victim.Stats(); st.Relay.Shed != 0 || st.Spool.Shed != 0 {
		t.Fatalf("killed incarnation shed sessions: %+v", st)
	}
}
