package ingest

import (
	"encoding/json"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/heartbeat"
	"repro/internal/online"
	"repro/internal/session"
	"repro/internal/testutil"
)

// testAnalysis is a deterministic analysis config for aggregator tests:
// serial (Workers 1) so equivalence checks compare like against like.
func testAnalysis(sessionsPerEpoch int) core.Config {
	cfg := core.DefaultConfig(sessionsPerEpoch)
	cfg.Workers = 1
	return cfg
}

// TestAggregatorMatchesSingleCollectorPath is the distribution-transparency
// guarantee: sessions scattered across three nodes and ingested in a
// scrambled interleaving must analyse byte-identically to the same epoch
// built by one collector. The aggregator earns this by merging per-node
// tables in sorted node order and fixing the session order by ID before
// the float passes run.
func TestAggregatorMatchesSingleCollectorPath(t *testing.T) {
	const n = 150
	cfg := testAnalysis(n)

	ring := NewRing(0)
	nodeIDs := map[string]uint64{"n1": 1, "n2": 2, "n3": 3}
	for m := range nodeIDs {
		ring.Add(m)
	}

	sessions := make([]session.Session, n)
	for i := range sessions {
		sessions[i] = mkSession(uint64(i+1), 0)
	}
	// Scramble arrival: stride through the list so node streams interleave
	// and no node's sessions arrive contiguously.
	order := make([]int, n)
	for i := range order {
		order[i] = (i * 67) % n
	}

	agg, err := NewAggregator(AggregatorConfig{Analysis: cfg, ExpectNodes: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	perNode := make(map[uint64]int)
	for _, i := range order {
		owner, ok := ring.Owner(sessions[i].ID)
		if !ok {
			t.Fatal("ring empty")
		}
		id := nodeIDs[owner]
		perNode[id]++
		agg.Ingest(id, &sessions[i])
	}
	if len(perNode) != 3 {
		t.Fatalf("ring routed to %d nodes, want 3 (%v)", len(perNode), perNode)
	}
	cov, res, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Degraded || cov.Starved {
		t.Fatalf("healthy epoch stamped %+v", cov)
	}
	if cov.Sessions != n || cov.NodesReporting != 3 {
		t.Fatalf("coverage %+v, want %d sessions over 3 nodes", cov, n)
	}

	// Single-collector baseline: same sessions, canonical (ID-sorted)
	// order, same serial config.
	sorted := make([]session.Session, n)
	copy(sorted, sessions)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	lites := make([]cluster.Lite, n)
	for i := range sorted {
		lites[i] = cluster.Digest(&sorted[i], cfg.Thresholds)
	}
	want, err := core.AnalyzeEpoch(0, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("distributed result differs from single-collector result:\n got %+v\nwant %+v", res, want)
	}
	gotJSON, _ := json.Marshal(res)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("serialized results differ:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestAggregatorIdempotentUnderReplay covers the delivery pathologies the
// relay tier can produce: duplicate sessions (lost-ack retries, recovered
// segments), and sessions arriving after their epoch sealed.
func TestAggregatorIdempotentUnderReplay(t *testing.T) {
	cfg := testAnalysis(10)
	agg, err := NewAggregator(AggregatorConfig{Analysis: cfg, ExpectNodes: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 10; id++ {
		s := mkSession(id, 0)
		agg.Ingest(1, &s)
	}
	// Re-deliver every session (a whole recovered segment replayed), some
	// from a different node ID — still the same session.
	for id := uint64(1); id <= 10; id++ {
		s := mkSession(id, 0)
		agg.Ingest(1, &s)
		if id%2 == 0 {
			agg.Ingest(2, &s)
		}
	}
	if got := agg.EpochSessions(0); got != 10 {
		t.Fatalf("epoch holds %d sessions after replay, want 10", got)
	}
	cov, res, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Sessions != 10 || cov.Duplicates != 15 {
		t.Fatalf("coverage %+v, want 10 sessions and 15 duplicates", cov)
	}
	if res == nil {
		t.Fatal("healthy epoch produced no result")
	}

	// Late arrival for a sealed epoch: dropped and counted, never merged.
	late := mkSession(99, 0)
	agg.Ingest(1, &late)
	if got := agg.Stats().LateSessions; got != 1 {
		t.Fatalf("late sessions %d, want 1", got)
	}
	if got := agg.EpochSessions(0); got != 0 {
		t.Fatalf("sealed epoch reopened with %d sessions", got)
	}
	// Sealing backwards is rejected.
	if _, _, err := agg.Seal(0); err == nil {
		t.Fatal("re-sealing epoch 0 must fail")
	}
}

// TestAggregatorDegradationFreezesDetector exercises the coverage rules:
// a silent node, a node restart, and reported shedding each degrade the
// epoch, and degraded epochs freeze the detector (GapEpochs) instead of
// being analysed.
func TestAggregatorDegradationFreezesDetector(t *testing.T) {
	cfg := testAnalysis(20)
	var alerts []online.Alert
	agg, err := NewAggregator(AggregatorConfig{
		Analysis:    cfg,
		ExpectNodes: 2,
		Emit:        func(a online.Alert) { alerts = append(alerts, a) },
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg.RegisterNode(1, 0)
	agg.RegisterNode(2, 0)

	// Epoch 0: both nodes report — healthy.
	for id := uint64(1); id <= 20; id++ {
		s := mkSession(id, 0)
		node := uint64(1 + id%2)
		agg.Ingest(node, &s)
	}
	cov, res, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Degraded || res == nil {
		t.Fatalf("epoch 0 should be healthy, got %+v", cov)
	}

	// Epoch 1: only node 1 reports — the silent node degrades coverage.
	for id := uint64(21); id <= 40; id++ {
		s := mkSession(id, 1)
		agg.Ingest(1, &s)
	}
	cov, res, err = agg.Seal(1)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Degraded || cov.NodesReporting != 1 || res != nil {
		t.Fatalf("epoch 1 with a silent node: %+v (res %v)", cov, res)
	}

	// Epoch 2: both report, but node 2 restarts mid-epoch.
	for id := uint64(41); id <= 60; id++ {
		s := mkSession(id, 2)
		node := uint64(1 + id%2)
		agg.Ingest(node, &s)
	}
	agg.RegisterNode(2, 1) // incarnation bump: the old process died
	cov, res, err = agg.Seal(2)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Degraded || cov.Restarts != 1 || res != nil {
		t.Fatalf("epoch 2 with a restart: %+v (res %v)", cov, res)
	}

	// Epoch 3: both report, but a node reported shed sessions.
	for id := uint64(61); id <= 80; id++ {
		s := mkSession(id, 3)
		node := uint64(1 + id%2)
		agg.Ingest(node, &s)
	}
	agg.UpdateStatus(1, [4]uint64{StatusRelayShed: 5})
	cov, res, err = agg.Seal(3)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Degraded || cov.RelayShed != 5 || res != nil {
		t.Fatalf("epoch 3 with shedding: %+v (res %v)", cov, res)
	}
	// The shed delta was charged to epoch 3; epoch 4 starts clean.
	for id := uint64(81); id <= 100; id++ {
		s := mkSession(id, 4)
		node := uint64(1 + id%2)
		agg.Ingest(node, &s)
	}
	cov, res, err = agg.Seal(4)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Degraded || cov.RelayShed != 0 || res == nil {
		t.Fatalf("epoch 4 should be healthy again: %+v", cov)
	}

	det := agg.Detector()
	if det.Epochs != 5 || det.GapEpochs != 3 {
		t.Fatalf("detector saw %d epochs with %d gaps, want 5 and 3", det.Epochs, det.GapEpochs)
	}
}

// TestAggregatorSealsHoles: epochs nothing reported into still get coverage
// records (empty, degraded) so the detector's epoch clock never skips.
func TestAggregatorSealsHoles(t *testing.T) {
	cfg := testAnalysis(10)
	agg, err := NewAggregator(AggregatorConfig{Analysis: cfg, ExpectNodes: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 10; id++ {
		s := mkSession(id, 0)
		agg.Ingest(1, &s)
	}
	for id := uint64(11); id <= 20; id++ {
		s := mkSession(id, 3)
		agg.Ingest(1, &s)
	}
	if err := agg.SealAll(); err != nil {
		t.Fatal(err)
	}
	covs := agg.Coverages()
	if len(covs) != 4 {
		t.Fatalf("sealed %d epochs, want 4 (0..3 with holes)", len(covs))
	}
	for i, cov := range covs {
		if cov.Epoch != epoch.Index(i) {
			t.Fatalf("coverage %d is for epoch %d", i, cov.Epoch)
		}
	}
	for _, hole := range []int{1, 2} {
		if covs[hole].Sessions != 0 || !covs[hole].Degraded {
			t.Fatalf("hole epoch %d not sealed empty+degraded: %+v", hole, covs[hole])
		}
	}
	if covs[0].Degraded || covs[3].Degraded {
		t.Fatalf("populated epochs wrongly degraded: %+v %+v", covs[0], covs[3])
	}
	if agg.Detector().GapEpochs != 2 {
		t.Fatalf("detector gaps %d, want 2", agg.Detector().GapEpochs)
	}
}

// TestAggregatorStarvedEpochFreezes: MinEpochSessions gates a technically
// healthy but starved epoch through the same freeze path.
func TestAggregatorStarvedEpochFreezes(t *testing.T) {
	cfg := testAnalysis(10)
	agg, err := NewAggregator(AggregatorConfig{
		Analysis:         cfg,
		ExpectNodes:      1,
		MinEpochSessions: 8,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		s := mkSession(id, 0)
		agg.Ingest(1, &s)
	}
	cov, res, err := agg.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Starved || res != nil {
		t.Fatalf("3 < 8 sessions must starve the epoch: %+v (res %v)", cov, res)
	}
	if agg.Detector().GapEpochs != 1 {
		t.Fatalf("detector gaps %d, want 1", agg.Detector().GapEpochs)
	}
}

// TestAggregatorRejectsNonHelloFirstFrame: the relay protocol requires a
// control Hello before anything else; a stray client speaking the player
// protocol is dropped with a protocol error, not half-ingested.
func TestAggregatorRejectsNonHelloFirstFrame(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	cfg := testAnalysis(10)
	agg, err := NewAggregator(AggregatorConfig{Analysis: cfg, Logf: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", agg.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := heartbeat.NewWriter(conn)
	s := mkSession(1, 0)
	m := heartbeat.SessionMessage(&s)
	if err := w.Write(&m); err != nil {
		t.Fatal(err)
	}
	// The aggregator must hang up on us.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("aggregator kept the connection after a protocol violation")
	}
	_ = conn.Close()
	if err := agg.CloseGrace(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := agg.Stats()
	if st.ProtocolErrors == 0 {
		t.Fatalf("no protocol error recorded: %+v", st)
	}
	if agg.EpochSessions(0) != 0 {
		t.Fatal("session ingested without a node announcement")
	}
}

// TestSealThroughFromColdStart: SealThrough on an aggregator that never
// sealed starts from its lowest open epoch.
func TestSealThroughFromColdStart(t *testing.T) {
	cfg := testAnalysis(10)
	agg, err := NewAggregator(AggregatorConfig{Analysis: cfg, ExpectNodes: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 10; id++ {
		s := mkSession(id, 2)
		agg.Ingest(1, &s)
	}
	if err := agg.SealThrough(4); err != nil {
		t.Fatal(err)
	}
	covs := agg.Coverages()
	if len(covs) != 3 { // 2, 3, 4
		t.Fatalf("sealed %d epochs, want 3: %+v", len(covs), covs)
	}
	if covs[0].Epoch != 2 || covs[0].Sessions != 10 || covs[0].Degraded {
		t.Fatalf("epoch 2 coverage wrong: %+v", covs[0])
	}
	for _, c := range covs[1:] {
		if c.Sessions != 0 || !c.Degraded {
			t.Fatalf("empty epoch %d not degraded: %+v", c.Epoch, c)
		}
	}
}
