package ingest

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/heartbeat"
	"repro/internal/session"
	"repro/internal/trace"
)

// Status frame indices: the semantics of the four cumulative counters a
// node reports to the aggregator in heartbeat KindStatus frames. The
// aggregator folds per-epoch deltas of these into coverage records.
const (
	// StatusRelayShed counts sessions lost inside the relay: abandoned
	// sends, spool-overflow segment drops, and unreadable segments.
	StatusRelayShed = 0
	// StatusSpoolShed counts sessions shed by the node's in-memory spool.
	StatusSpoolShed = 1
	// StatusSalvaged counts sessions the node's assembler salvaged as join
	// failures (connection died after Hello, no player status).
	StatusSalvaged = 2
	// StatusRecovered counts sessions re-read from disk segments after a
	// node restart and re-sent.
	StatusRecovered = 3
)

// segPattern names on-disk spool segments; the zero-padded index keeps
// lexical order equal to creation order.
const segPattern = "seg-%06d.vqt"

// RelayConfig shapes a Relay.
type RelayConfig struct {
	// Dir is the spool directory; segments that survive a node kill are
	// recovered from it on restart.
	Dir string
	// NodeID identifies this node to the aggregator (must fit below
	// heartbeat.ControlSessionBit).
	NodeID uint64
	// Incarnation distinguishes restarts of the same node; the aggregator
	// marks open epochs degraded when it grows.
	Incarnation uint64
	// RotateEvery seals the active segment after this many sessions
	// (default 256); sealed segments are what the send loop ships.
	RotateEvery int
	// MaxSegments bounds the sealed-segment backlog (default 64); overflow
	// drops the oldest segment and counts its sessions as shed — bounded
	// disk, explicit loss, exactly like the in-memory spool.
	MaxSegments int
	// Sender configures the relay's heartbeat.Sender to the aggregator.
	// AckMode is forced on: a segment file is deleted only after every one
	// of its sessions was acknowledged.
	Sender heartbeat.SenderConfig
	// StatusFn supplies the node's composite cumulative counters for
	// KindStatus frames (nil disables status reporting). Called from the
	// relay's send goroutine; must be safe for concurrent use.
	StatusFn func() [4]uint64
	// Logf receives diagnostics (nil silences).
	Logf func(format string, args ...any)
}

// RelayStats snapshots the relay's accounting.
type RelayStats struct {
	// Offered counts sessions handed to Offer.
	Offered int64
	// Sent counts sessions delivered to (and acknowledged by) the
	// aggregator.
	Sent int64
	// Abandoned counts sessions whose send exhausted MaxAttempts.
	Abandoned int64
	// Shed counts sessions lost to segment overflow, unreadable segments,
	// write failures, or offers after close.
	Shed int64
	// Recovered counts sessions re-read from leftover segments at startup.
	Recovered int64
	// SegmentsSealed and SegmentsDropped count rotation and overflow
	// events.
	SegmentsSealed  int64
	SegmentsDropped int64
	// QueueSegments is the current sealed backlog; ActiveSessions the
	// record count of the unsealed active segment.
	QueueSegments  int
	ActiveSessions int
}

type segment struct {
	path  string
	count int
}

// Relay is the node-to-aggregator shipping lane: sessions are appended to
// disk-backed spool segments (flushed per record, fsynced at rotation) and
// a single send goroutine streams sealed segments to the aggregator over an
// ack-mode heartbeat.Sender, deleting a segment only after every session in
// it was acknowledged. A killed node leaves its segments on disk; the next
// incarnation recovers and re-sends them, and the aggregator's (epoch, ID)
// dedup absorbs anything delivered twice.
type Relay struct {
	cfg RelayConfig
	snd *heartbeat.Sender

	mu          sync.Mutex
	activeF     *os.File
	activeW     *trace.Writer
	activePath  string
	activeCount int
	nextSeg     int
	queue       []segment
	closed      bool
	killed      bool

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	offered, sent, abandoned, shed, recovered atomic.Int64
	sealedSegs, droppedSegs                   atomic.Int64
}

// NewRelay opens (or reopens) a spool directory, recovers any leftover
// segments from a previous incarnation, and starts the send loop against
// dial. The relay announces its identity (a control Hello carrying NodeID
// and Incarnation) before any session, on every connection.
func NewRelay(dial func() (net.Conn, error), cfg RelayConfig) (*Relay, error) {
	if cfg.NodeID&heartbeat.ControlSessionBit != 0 {
		return nil, fmt.Errorf("ingest: node ID %#x collides with the control bit", cfg.NodeID)
	}
	if cfg.RotateEvery <= 0 {
		cfg.RotateEvery = 256
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 64
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: spool dir: %w", err)
	}
	r := &Relay{
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if err := r.recover(); err != nil {
		return nil, err
	}
	sc := cfg.Sender
	sc.AckMode = true
	r.snd = heartbeat.NewSender(dial, sc)
	r.snd.Logf = cfg.Logf
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// recover scans the spool directory for segments a previous incarnation
// left behind, counts their sessions (streaming, torn-tail tolerant), and
// queues them for re-sending.
func (r *Relay) recover() error {
	paths, err := filepath.Glob(filepath.Join(r.cfg.Dir, "seg-*.vqt"))
	if err != nil {
		return fmt.Errorf("ingest: scanning spool dir: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(p), segPattern, &idx); err == nil && idx >= r.nextSeg {
			r.nextSeg = idx + 1
		}
		n, err := countSegmentSessions(p)
		if err != nil {
			// Header torn or unreadable: nothing recoverable inside. Remove
			// it so the backlog stays bounded; the loss shows up as relay
			// shed on the next status report.
			r.logf("ingest: dropping unreadable spool segment %s: %v", p, err)
			_ = os.Remove(p)
			continue
		}
		if n == 0 {
			_ = os.Remove(p)
			continue
		}
		r.recovered.Add(int64(n))
		r.queue = append(r.queue, segment{path: p, count: n})
	}
	return nil
}

// countSegmentSessions streams a segment to count its complete records; a
// torn tail truncates the count, it does not fail it.
func countSegmentSessions(path string) (int, error) {
	rd, err := trace.Open(path)
	if err != nil {
		return 0, err
	}
	rd.Logf = nil
	n := 0
	var s session.Session
	for {
		err := rd.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			_ = rd.Close() // the decode error is the one worth surfacing
			return n, err
		}
		n++
	}
	return n, rd.Close()
}

func (r *Relay) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Offer appends one assembled session to the active spool segment. It never
// blocks on the network: disk write and flush, rotation when due, and the
// send loop ships sealed segments asynchronously. Failures shed the session
// with accounting, never wedge the caller.
func (r *Relay) Offer(s session.Session) {
	r.offered.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.shed.Add(1)
		return
	}
	if r.activeW == nil && !r.openSegmentLocked() {
		r.shed.Add(1)
		return
	}
	if err := r.activeW.Write(&s); err != nil {
		r.logf("ingest: spool write: %v (session shed)", err)
		r.shed.Add(1)
		return
	}
	if err := r.activeW.Flush(); err != nil {
		// The record may be partially on disk; the torn-tail reader drops
		// it on recovery, so count it lost now.
		r.logf("ingest: spool flush: %v (session shed)", err)
		r.shed.Add(1)
		return
	}
	r.activeCount++
	if r.activeCount >= r.cfg.RotateEvery {
		r.sealLocked()
	}
}

// Rotate seals the active segment (if it has records) so its sessions ship
// now instead of waiting for RotateEvery; nodes call it at epoch
// boundaries.
func (r *Relay) Rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.sealLocked()
	}
}

func (r *Relay) openSegmentLocked() bool {
	path := filepath.Join(r.cfg.Dir, fmt.Sprintf(segPattern, r.nextSeg))
	f, err := os.Create(path)
	if err != nil {
		r.logf("ingest: creating spool segment: %v", err)
		return false
	}
	w, err := trace.NewWriter(f, trace.Header{Comment: "relay spool segment"}, false)
	if err != nil {
		r.logf("ingest: spool segment header: %v", err)
		_ = f.Close()
		_ = os.Remove(path)
		return false
	}
	r.nextSeg++
	r.activeF, r.activeW, r.activePath, r.activeCount = f, w, path, 0
	return true
}

// sealLocked closes the active segment onto the send queue: writer flush,
// fsync, file close. The relay owns fsync policy (trace.Writer only flushes
// here), so durability is paid once per segment, not per record. Overflow
// beyond MaxSegments drops the oldest sealed segment, counting its
// sessions shed.
func (r *Relay) sealLocked() {
	if r.activeW == nil || r.activeCount == 0 {
		return
	}
	if err := r.activeW.Close(); err != nil {
		r.logf("ingest: sealing segment: %v", err)
	}
	if err := r.activeF.Sync(); err != nil {
		r.logf("ingest: fsync segment: %v", err)
	}
	if err := r.activeF.Close(); err != nil {
		r.logf("ingest: closing segment: %v", err)
	}
	r.queue = append(r.queue, segment{path: r.activePath, count: r.activeCount})
	r.sealedSegs.Add(1)
	r.activeF, r.activeW, r.activePath, r.activeCount = nil, nil, "", 0
	for len(r.queue) > r.cfg.MaxSegments {
		old := r.queue[0]
		r.queue = r.queue[1:]
		r.shed.Add(int64(old.count))
		r.droppedSegs.Add(1)
		_ = os.Remove(old.path)
		r.logf("ingest: spool overflow: dropped segment %s (%d sessions)", old.path, old.count)
	}
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// run is the send loop: announce identity, then ship sealed segments in
// order, status after each, until closed (drain) or killed (stop now).
func (r *Relay) run() {
	defer r.wg.Done()
	if !r.announce() {
		return
	}
	for {
		seg, ok := r.pop()
		if ok {
			if !r.sendSegment(seg) {
				return // sender closed mid-segment; file stays for recovery
			}
			r.sendStatus()
			continue
		}
		r.mu.Lock()
		closed, killed := r.closed, r.killed
		r.mu.Unlock()
		if killed {
			return
		}
		if closed {
			r.sendStatus()
			return
		}
		select {
		case <-r.wake:
		case <-r.done:
		}
	}
}

// announce sends the control Hello carrying this node's identity. The
// Sender's replay keeps it as the first frame of every future connection,
// so the aggregator always learns who is talking before any session
// arrives. Retries until delivered or the relay stops.
func (r *Relay) announce() bool {
	m := heartbeat.Message{
		Kind:      heartbeat.KindHello,
		SessionID: heartbeat.ControlSessionBit | r.cfg.NodeID,
	}
	m.Attrs[0] = int32(r.cfg.Incarnation)
	for {
		err := r.snd.Send(&m)
		if err == nil {
			return true
		}
		if errors.Is(err, heartbeat.ErrSenderClosed) {
			return false
		}
		// Abandoned this round (aggregator down past MaxAttempts): nothing
		// may ship before the announce, so wait and try again.
		select {
		case <-r.done:
			return false
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (r *Relay) pop() (segment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.queue) == 0 {
		return segment{}, false
	}
	seg := r.queue[0]
	r.queue = r.queue[1:]
	return seg, true
}

// sendSegment streams one sealed segment to the aggregator, session by
// session, each acknowledged before the next. The file is removed only
// after the last session; a sender closed mid-segment (kill) leaves it on
// disk for the next incarnation, which re-sends the whole segment — the
// aggregator's dedup makes the overlap harmless. It returns false when the
// sender is closed.
func (r *Relay) sendSegment(seg segment) bool {
	rd, err := trace.Open(seg.path)
	if err != nil {
		r.logf("ingest: reading segment %s: %v (%d sessions shed)", seg.path, err, seg.count)
		r.shed.Add(int64(seg.count))
		_ = os.Remove(seg.path)
		return true
	}
	rd.Logf = nil
	var s session.Session
	for {
		err := rd.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			r.logf("ingest: decoding segment %s: %v (rest shed)", seg.path, err)
			r.shed.Add(1) // at least the undecodable record is gone
			break
		}
		m := heartbeat.SessionMessage(&s)
		if err := r.snd.Send(&m); err != nil {
			if errors.Is(err, heartbeat.ErrSenderClosed) {
				_ = rd.Close() // keep the file: recovery re-sends it
				return false
			}
			r.abandoned.Add(1)
			continue
		}
		r.sent.Add(1)
	}
	if err := rd.Close(); err != nil {
		r.logf("ingest: closing segment %s: %v", seg.path, err)
	}
	_ = os.Remove(seg.path)
	return true
}

// sendStatus ships the node's cumulative counters; best-effort (the
// counters are cumulative, so a lost status is covered by the next one).
func (r *Relay) sendStatus() {
	if r.cfg.StatusFn == nil {
		return
	}
	m := heartbeat.Message{
		Kind:      heartbeat.KindStatus,
		SessionID: heartbeat.ControlSessionBit | r.cfg.NodeID,
		Status:    r.cfg.StatusFn(),
	}
	if err := r.snd.Send(&m); err != nil && !errors.Is(err, heartbeat.ErrSenderClosed) {
		r.logf("ingest: status send: %v", err)
	}
}

// Close drains gracefully: the active segment seals, every queued segment
// ships, a final status goes out, and the sender closes.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("ingest: relay already closed")
	}
	r.closed = true
	r.sealLocked()
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
	return r.snd.Close()
}

// Kill models the node process dying: the sender is torn down immediately
// (an in-flight send aborts), nothing drains, and sealed and active
// segments alike stay on disk for the next incarnation to recover.
func (r *Relay) Kill() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.killed = true
	if r.activeF != nil {
		// No seal, no fsync: the file keeps whatever Flush already pushed,
		// exactly the on-disk state a killed process leaves behind.
		_ = r.activeF.Close()
		r.activeF, r.activeW, r.activePath, r.activeCount = nil, nil, "", 0
	}
	r.mu.Unlock()
	_ = r.snd.Close() // interrupts a blocked Send or backoff
	close(r.done)
	r.wg.Wait()
}

// SenderStats exposes the underlying sender's delivery counters.
func (r *Relay) SenderStats() heartbeat.SenderStats { return r.snd.Stats() }

// Stats snapshots the relay counters.
func (r *Relay) Stats() RelayStats {
	r.mu.Lock()
	queue, active := len(r.queue), r.activeCount
	r.mu.Unlock()
	return RelayStats{
		Offered:         r.offered.Load(),
		Sent:            r.sent.Load(),
		Abandoned:       r.abandoned.Load(),
		Shed:            r.shed.Load(),
		Recovered:       r.recovered.Load(),
		SegmentsSealed:  r.sealedSegs.Load(),
		SegmentsDropped: r.droppedSegs.Load(),
		QueueSegments:   queue,
		ActiveSessions:  active,
	}
}
