package ingest

import (
	"encoding/json"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/faultnet"
	"repro/internal/testutil"
)

// ingestChaosSeed pins player behaviour, fault schedules, and backoff
// jitter so a soak failure replays exactly.
const ingestChaosSeed = 0x1A6E57

// sealHealthyEpoch seals e and checks it both healthy and byte-identical
// to a single-collector analysis of the same ID set.
func sealHealthyEpoch(t *testing.T, agg *Aggregator, e epoch.Index, ids []uint64, cfg core.Config) {
	t.Helper()
	cov, res, err := agg.Seal(e)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Degraded || cov.Starved || res == nil {
		t.Fatalf("epoch %d should be healthy: %+v (res %v)", e, cov, res != nil)
	}
	if cov.Sessions != len(ids) {
		t.Fatalf("epoch %d sealed %d sessions, want %d", e, cov.Sessions, len(ids))
	}
	sorted := make([]uint64, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lites := make([]cluster.Lite, len(sorted))
	for i, id := range sorted {
		s := mkSession(id, e)
		lites[i] = cluster.Digest(&s, cfg.Thresholds)
	}
	want, err := core.AnalyzeEpoch(e, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		gotJSON, _ := json.Marshal(res)
		wantJSON, _ := json.Marshal(want)
		t.Fatalf("epoch %d distributed result differs from single-collector baseline:\n got %s\nwant %s", e, gotJSON, wantJSON)
	}
}

// TestNodeKillChaosSoak drives three epochs of players through a
// three-node ring into one aggregator, under client-side fault injection,
// and kills + restarts one node mid-epoch-1. The invariants:
//
//   - exact conservation: every session started is delivered exactly once
//     (the per-epoch unique counts reach the started counts, with zero
//     shed and zero abandoned anywhere in the tier);
//   - the interrupted epoch is stamped degraded and the detector freezes
//     (GapEpochs) instead of analysing a biased sample;
//   - the healthy epochs analyse byte-identically to a single-collector
//     run of the same sessions.
func TestNodeKillChaosSoak(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()

	perEpoch := 60
	if testing.Short() {
		perEpoch = 24
	}
	cfg := testAnalysis(perEpoch)

	agg, err := NewAggregator(AggregatorConfig{Analysis: cfg, ExpectNodes: 3, Logf: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	aggAddr := agg.Addr().String()
	aggDial := func() (net.Conn, error) { return net.Dial("tcp", aggAddr) }

	dirs := map[uint64]string{1: t.TempDir(), 2: t.TempDir(), 3: t.TempDir()}
	nodes := make(map[string]*Node)
	memberID := make(map[string]uint64)
	ring := NewRing(0)
	for id := uint64(1); id <= 3; id++ {
		nd := startNodeAt(t, id, 1, "127.0.0.1:0", dirs[id], 8, aggDial)
		m := nd.Addr().String()
		nodes[m] = nd
		memberID[m] = id
		ring.Add(m)
	}
	currentNodes := func() []*Node {
		out := make([]*Node, 0, 3)
		for _, nd := range nodes {
			out = append(out, nd)
		}
		return out
	}
	epochIDs := func(e int) []uint64 {
		ids := make([]uint64, perEpoch)
		for i := range ids {
			ids[i] = uint64(e*perEpoch + i + 1)
		}
		return ids
	}

	faults := &faultConns{}
	fcfg := faultnet.Config{
		StallProb:        0.02,
		StallMax:         time.Millisecond,
		ResetProb:        0.02,
		PartialWriteProb: 0.02,
	}
	var abandoned sync.Map
	failIfAbandoned := func(phase string) {
		t.Helper()
		abandoned.Range(func(k, v any) bool {
			t.Fatalf("%s: player %v abandoned: %v (retry budget should always win)", phase, k, v)
			return false
		})
	}

	// ---- Epoch 0: all nodes healthy. ----
	spawnPlayers(ring, 0, epochIDs(0), ingestChaosSeed, faults, fcfg, &abandoned).Wait()
	failIfAbandoned("epoch 0")
	rotateAndWait(t, currentNodes(), 20*time.Second, "epoch 0 at aggregator", func() bool {
		return agg.EpochSessions(0) == perEpoch
	})
	sealHealthyEpoch(t, agg, 0, epochIDs(0), cfg)

	// ---- Epoch 1: kill one node mid-epoch, restart it. ----
	wg1 := spawnPlayers(ring, 1, epochIDs(1), ingestChaosSeed, faults, fcfg, &abandoned)
	// Wait until the epoch is visibly open at the aggregator (so the
	// restart announcement lands on it) and then pull the plug with
	// players still in flight.
	waitFor(t, 20*time.Second, "epoch 1 visible at aggregator", func() bool {
		return agg.EpochSessions(1) >= 1
	})
	victimMember, _ := ring.Owner(epochIDs(1)[0])
	victim := nodes[victimMember]
	victimID := memberID[victimMember]
	victim.Kill()
	restarted := startNodeAt(t, victimID, 2, victimMember, dirs[victimID], 8, aggDial)
	nodes[victimMember] = restarted
	wg1.Wait()
	failIfAbandoned("epoch 1")
	rotateAndWait(t, currentNodes(), 30*time.Second, "epoch 1 at aggregator", func() bool {
		return agg.EpochSessions(1) == perEpoch
	})
	cov1, res1, err := agg.Seal(1)
	if err != nil {
		t.Fatal(err)
	}
	if !cov1.Degraded || cov1.Restarts == 0 {
		t.Fatalf("epoch 1 survived a node kill undegraded: %+v", cov1)
	}
	if res1 != nil {
		t.Fatal("degraded epoch was analysed; it must freeze the detector instead")
	}
	if cov1.Sessions != perEpoch {
		t.Fatalf("conservation broken across the kill: %d unique sessions, want %d", cov1.Sessions, perEpoch)
	}

	// ---- Epoch 2: fleet healthy again (same node ID, new incarnation). ----
	spawnPlayers(ring, 2, epochIDs(2), ingestChaosSeed, faults, fcfg, &abandoned).Wait()
	failIfAbandoned("epoch 2")
	rotateAndWait(t, currentNodes(), 20*time.Second, "epoch 2 at aggregator", func() bool {
		return agg.EpochSessions(2) == perEpoch
	})
	sealHealthyEpoch(t, agg, 2, epochIDs(2), cfg)

	// ---- Teardown and the global ledger. ----
	for _, nd := range nodes {
		if err := nd.Close(5 * time.Second); err != nil {
			t.Fatalf("closing node: %v", err)
		}
	}
	if err := agg.CloseGrace(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	started := 3 * perEpoch
	delivered := 0
	for _, cov := range agg.Coverages() {
		delivered += cov.Sessions
	}
	var shed int64
	for _, nd := range nodes {
		st := nd.Stats()
		shed += st.Relay.Shed + st.Relay.Abandoned + st.Spool.Shed
	}
	// The killed incarnation's ledger counts too: its losses (if any) are
	// part of the same conservation law.
	vst := victim.Stats()
	shed += vst.Relay.Shed + vst.Relay.Abandoned + vst.Spool.Shed
	if delivered+int(shed) != started {
		t.Fatalf("conservation broken: delivered %d + shed %d != started %d", delivered, shed, started)
	}
	if shed != 0 {
		t.Fatalf("tier shed %d sessions despite ack-gated shipping at every hop", shed)
	}

	det := agg.Detector()
	if det.Epochs != 3 || det.GapEpochs != 1 {
		t.Fatalf("detector saw %d epochs, %d gaps; want 3 and 1", det.Epochs, det.GapEpochs)
	}
	st := agg.Stats()
	if st.HandlerPanics != 0 || st.ProtocolErrors != 0 {
		t.Fatalf("aggregator errors under chaos: %+v", st)
	}
	fs := faults.total()
	if fs.Stalls == 0 || fs.Resets == 0 || fs.PartialWrites == 0 {
		t.Fatalf("fault classes did not all fire: %+v", fs)
	}
	t.Logf("soak: %d players over 3 epochs, dup deliveries %d, recovered by restart %d, player faults %+v",
		started, st.DupSessions, restarted.Stats().Relay.Recovered, fs)
}
