package ingest

import (
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/heartbeat"
	"repro/internal/metric"
	"repro/internal/session"
)

// fastSenderConfig keeps relay retry loops fast enough for tests while
// staying deterministic per seed.
func fastSenderConfig(seed uint64) heartbeat.SenderConfig {
	return heartbeat.SenderConfig{
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		MaxAttempts: 3,
		Seed:        seed,
	}
}

// mkSession builds a deterministic session whose QoE varies enough to light
// different problem bits across the fleet. Pure function of (id, e) so every
// test — and both sides of an equivalence check — regenerates identical
// records.
func mkSession(id uint64, e epoch.Index) session.Session {
	return session.Session{
		ID:    id,
		Epoch: e,
		Attrs: attr.Vector{
			int32(id % 3), int32(id % 2), int32(id % 4),
			int32(id % 5), 1, 0, int32(id % 2),
		},
		QoE: metric.QoE{
			JoinFailed:  id%23 == 0,
			JoinTimeMS:  100 * float64(id%30),
			BufRatio:    float64(id%10) / 50,
			BitrateKbps: 500 + float64(id%40)*100,
			DurationS:   60 + float64(id%120),
		},
		EventIDs: session.NoEvents,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
