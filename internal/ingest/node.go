package ingest

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/heartbeat"
	"repro/internal/session"
)

// NodeConfig shapes one edge collector node.
type NodeConfig struct {
	// ID is the node's identity on the aggregator (stable across
	// restarts); Incarnation must grow by one per restart.
	ID          uint64
	Incarnation uint64
	// SpoolDir holds the node's relay segments; reuse it across restarts so
	// recovery finds what the previous incarnation left.
	SpoolDir string
	// Aggregator dials the central aggregator.
	Aggregator func() (net.Conn, error)
	// Listener accepts player connections; nil listens on ListenAddr
	// (default "127.0.0.1:0").
	Listener   net.Listener
	ListenAddr string
	// SpoolCapacity bounds the in-memory assembler→relay buffer (default
	// 1024).
	SpoolCapacity int
	// RotateEvery / MaxSegments tune the relay spool (see RelayConfig).
	RotateEvery int
	MaxSegments int
	// Sender configures the relay's aggregator link.
	Sender heartbeat.SenderConfig
	// Logf receives diagnostics (nil silences).
	Logf func(format string, args ...any)
}

// NodeStats is the composite accounting of one node.
type NodeStats struct {
	Collector heartbeat.Stats
	Spool     heartbeat.SpoolStats
	Relay     RelayStats
	Sender    heartbeat.SenderStats
}

// Node is one edge collector: an accept plane assembling player heartbeat
// streams into sessions, a bounded in-memory spool decoupling assembly from
// disk, and a Relay shipping assembled sessions to the aggregator. The
// pipeline per session is collector → spool → relay segment → acked send.
type Node struct {
	cfg NodeConfig

	// mu fences the pipeline fields against the relay's send goroutine,
	// which may call status (via StatusFn) while StartNode is still wiring
	// the spool and collector up.
	mu    sync.Mutex
	col   *heartbeat.Collector
	sp    *heartbeat.Spool
	relay *Relay
}

// StartNode builds and starts a node: relay first (recovering any segments
// a previous incarnation left in SpoolDir), then the spool feeding it, then
// the collector accepting players.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	n := &Node{cfg: cfg}
	relay, err := NewRelay(cfg.Aggregator, RelayConfig{
		Dir:         cfg.SpoolDir,
		NodeID:      cfg.ID,
		Incarnation: cfg.Incarnation,
		RotateEvery: cfg.RotateEvery,
		MaxSegments: cfg.MaxSegments,
		Sender:      cfg.Sender,
		StatusFn:    n.status,
		Logf:        cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	sp := heartbeat.NewSpool(cfg.SpoolCapacity, func(s session.Session) { relay.Offer(s) })
	col := heartbeat.NewCollector(func(s session.Session) { sp.Emit(s) })
	col.Logf = cfg.Logf
	n.mu.Lock()
	n.relay, n.sp, n.col = relay, sp, col
	n.mu.Unlock()

	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			sp.Close()
			relay.Kill()
			return nil, fmt.Errorf("ingest: node listen: %w", err)
		}
	}
	if err := col.Serve(ln); err != nil {
		sp.Close()
		relay.Kill()
		return nil, err
	}
	return n, nil
}

// status composes the node's cumulative loss counters for the relay's
// KindStatus frames. Runs on the relay's send goroutine — possibly before
// StartNode has finished wiring the node — so it snapshots the pipeline
// fields under the mutex and tolerates the not-yet-wired window.
func (n *Node) status() [4]uint64 {
	n.mu.Lock()
	relay, sp, col := n.relay, n.sp, n.col
	n.mu.Unlock()
	var st [4]uint64
	if relay != nil {
		rs := relay.Stats()
		st[StatusRelayShed] = uint64(rs.Shed + rs.Abandoned)
		st[StatusRecovered] = uint64(rs.Recovered)
	}
	if sp != nil {
		st[StatusSpoolShed] = uint64(sp.Stats().Shed)
	}
	if col != nil {
		st[StatusSalvaged] = uint64(col.Stats().Salvaged)
	}
	return st
}

// Addr returns the player-facing listen address.
func (n *Node) Addr() net.Addr { return n.col.Addr() }

// Collector exposes the accept plane (tests flush its assembler).
func (n *Node) Collector() *heartbeat.Collector { return n.col }

// Relay exposes the aggregator link.
func (n *Node) Relay() *Relay { return n.relay }

// Stats snapshots the composite accounting.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Collector: n.col.Stats(),
		Spool:     n.sp.Stats(),
		Relay:     n.relay.Stats(),
		Sender:    n.relay.SenderStats(),
	}
}

// Kill models the node process dying mid-epoch. The kill boundary: player
// connections drop instantly (un-acked frames in flight are lost — their
// senders re-deliver to the ring's next owner), sessions pending in the
// assembler die with the process, and the relay stops without draining.
// Sessions already emitted into the in-memory spool are drained to the
// on-disk segment first: they stand in for writes riding the page cache,
// which survive a process kill (though not a machine crash — the fsync at
// segment seal covers that boundary). The next incarnation recovers the
// segments and re-sends.
func (n *Node) Kill() {
	n.col.Abort()
	n.sp.Close()
	n.relay.Kill()
}

// Close shuts the node down gracefully: the collector drains (its
// assembler force-flushes, salvaging half-reported sessions as join
// failures), the spool drains into the relay, and the relay seals and
// ships everything before a final status report.
func (n *Node) Close(grace time.Duration) error {
	err := n.col.CloseGrace(grace)
	n.sp.Close()
	if rerr := n.relay.Close(); err == nil {
		err = rerr
	}
	return err
}
