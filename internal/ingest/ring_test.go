package ingest

import (
	"fmt"
	"net"
	"testing"
)

func TestRingDistributionRoughlyUniform(t *testing.T) {
	r := NewRing(0)
	members := []string{"node-a:1", "node-b:2", "node-c:3"}
	for _, m := range members {
		r.Add(m)
	}
	const n = 30000
	counts := make(map[string]int)
	for id := uint64(1); id <= n; id++ {
		m, ok := r.Owner(id)
		if !ok {
			t.Fatal("owner not found on populated ring")
		}
		counts[m]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of sessions; want a rough third", m, 100*frac)
		}
	}
}

func TestRingMembershipChangeMovesOnlyAffectedArcs(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	const n = 10000
	before := make(map[uint64]string, n)
	for id := uint64(1); id <= n; id++ {
		before[id], _ = r.Owner(id)
	}

	// Removing c must not move any session between a and b.
	r.Remove("c")
	moved := 0
	for id := uint64(1); id <= n; id++ {
		after, _ := r.Owner(id)
		if before[id] != "c" {
			if after != before[id] {
				t.Fatalf("session %d moved %s→%s though only c left", id, before[id], after)
			}
			continue
		}
		if after == "c" {
			t.Fatalf("session %d still owned by removed member", id)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("c owned nothing; distribution test should have caught this")
	}

	// Re-adding c restores its arcs exactly: points derive from names only.
	r.Add("c")
	for id := uint64(1); id <= n; id++ {
		if after, _ := r.Owner(id); after != before[id] {
			t.Fatalf("session %d owner %s != original %s after c rejoined", id, after, before[id])
		}
	}
}

func TestRingVersionAndEmpty(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Owner(42); ok {
		t.Fatal("empty ring resolved an owner")
	}
	v0 := r.Version()
	r.Add("x")
	r.Add("x") // idempotent: no rebuild
	if got := r.Version(); got != v0+1 {
		t.Fatalf("version %d after one effective change, want %d", got, v0+1)
	}
	r.Remove("y") // not a member: no rebuild
	if got := r.Version(); got != v0+1 {
		t.Fatalf("version %d after no-op remove, want %d", got, v0+1)
	}
	if got := r.Members(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("members %v, want [x]", got)
	}
}

func TestRingDialerReResolvesOwner(t *testing.T) {
	r := NewRing(0)
	r.Add("old")
	var dialed []string
	dial := func(member string) (net.Conn, error) {
		dialed = append(dialed, member)
		return nil, fmt.Errorf("test: no transport")
	}
	d := r.Dialer(7, dial)
	_, _ = d()
	r.Remove("old")
	r.Add("new")
	_, _ = d()
	if len(dialed) != 2 || dialed[0] != "old" || dialed[1] != "new" {
		t.Fatalf("dialer resolved %v, want [old new]", dialed)
	}
	r.Remove("new")
	if _, err := d(); err == nil {
		t.Fatal("dial on empty ring must fail, not hang")
	}
}
