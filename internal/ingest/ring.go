// Package ingest is the distributed ingestion tier: N edge collector nodes
// accept player heartbeat connections, each session owned by exactly one
// node chosen by consistent hash of its session ID, and relay assembled
// session records over disk-backed spools to a central aggregator that
// merges per-node partial count tables and stamps every epoch with a
// coverage record. The paper's analysis assumes every session reaches one
// aggregation point; this tier keeps that true — or, when nodes die
// mid-epoch, makes the loss explicit so degraded epochs freeze the online
// detector instead of fabricating quality events.
package ingest

import (
	"fmt"
	"net"
	"sort"
	"sync"
)

// defaultReplicas is the virtual-point count per ring member. 64 points
// keeps the ownership split within a few percent of uniform for small
// member counts without making rebuilds expensive.
const defaultReplicas = 64

// mix64 is the splitmix64 finalizer: a full-avalanche mixer, so session IDs
// (often sequential) and member-name hashes spread uniformly around the
// ring.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a member name (an address string) to the ring's key space.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring of collector members (addresses). Every
// session ID maps to exactly one live member — the assembler that owns its
// heartbeats — and membership changes move only the sessions whose arcs
// changed hands. Safe for concurrent use: players resolve owners while an
// operator adds or removes nodes.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	members  map[string]bool
	points   []ringPoint
	version  uint64
}

// NewRing builds an empty ring; replicas <= 0 uses the default.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	r.rebuildLocked()
}

// Remove deletes a member (idempotent). Sessions it owned re-resolve to the
// surviving arcs on their next (re)connect.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	r.rebuildLocked()
}

// rebuildLocked regenerates the sorted point set. Points derive only from
// member names, so a member removed and re-added lands on identical arcs.
func (r *Ring) rebuildLocked() {
	r.version++
	r.points = r.points[:0]
	for m := range r.members {
		base := fnv64(m)
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, ringPoint{hash: mix64(base + uint64(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Members returns the live members, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Version counts membership changes; owners are stable between versions.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Owner resolves the member owning a session ID; ok is false on an empty
// ring.
func (r *Ring) Owner(sessionID uint64) (member string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := mix64(sessionID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the arc past the last point belongs to the first
	}
	return r.points[i].member, true
}

// Dialer returns a dial function for one session that re-resolves the
// session's owner at every (re)connect attempt. This is the handoff
// protocol: when the ring changes, the session's Sender loses its
// connection (the old owner died) or simply redials, the dialer lands on
// the new owner, and the Sender's re-Hello replay re-establishes the
// session there — no coordination channel beyond the ring itself.
func (r *Ring) Dialer(sessionID uint64, dial func(member string) (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		m, ok := r.Owner(sessionID)
		if !ok {
			return nil, fmt.Errorf("ingest: ring empty, session %d unroutable", sessionID)
		}
		return dial(m)
	}
}
