// Package faultnet is a deterministic fault-injection layer for stream
// transports: net.Conn and net.Listener wrappers that reproduce, from a
// single seed, the network pathologies the paper's measurement channel had
// to survive — stalls, connection resets, partial writes, in-flight byte
// corruption, and transient accept failures. The chaos soak test in
// internal/heartbeat drives hundreds of simulated players through these
// wrappers and asserts the collector pipeline degrades by accounting, not
// by crashing.
//
// Determinism: every wrapper draws from a stats.RNG split derived from the
// configured seed and a per-connection counter, so a given (seed, schedule
// of operations) replays the same fault sequence. Injected resets drop the
// offending write entirely before failing (modeling a RST that arrives
// before the segment is accepted), so "write returned an error" reliably
// implies "the frame was not delivered" — the invariant the heartbeat
// Sender's replay logic leans on.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/stats"
)

// Config enables individual fault classes. All probabilities are per
// operation (per Read, per Write, per Accept); zero disables a class.
type Config struct {
	// Seed makes the whole fault schedule reproducible.
	Seed uint64

	// StallProb delays an operation by a uniform duration in
	// [StallMin, StallMax] before it proceeds.
	StallProb float64
	StallMin  time.Duration
	StallMax  time.Duration

	// ResetProb abruptly closes the connection instead of performing the
	// operation; the operation (and every later one) fails with a reset
	// error. Nothing is delivered.
	ResetProb float64

	// PartialWriteProb delivers a strict prefix of the buffer, then fails
	// with a reset error.
	PartialWriteProb float64

	// CorruptProb flips one random bit of the buffer in transit. The
	// operation itself succeeds — corruption is only discoverable by the
	// receiver (checksums), exactly like the real network.
	CorruptProb float64

	// AcceptFailProb makes Accept return a transient error instead of a
	// connection.
	AcceptFailProb float64
}

// ErrInjectedReset marks a connection torn down by the injector.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// errTransientAccept is what a failed Accept returns; it is temporary in
// the net.Error sense so accept loops retry rather than shut down.
type errTransientAccept struct{}

func (errTransientAccept) Error() string   { return "faultnet: injected accept failure" }
func (errTransientAccept) Timeout() bool   { return false }
func (errTransientAccept) Temporary() bool { return true }

// Conn wraps a net.Conn with fault injection on both directions.
type Conn struct {
	net.Conn
	cfg Config

	mu    sync.Mutex
	rng   *stats.RNG
	dead  bool
	stats ConnStats
}

// ConnStats counts the faults a connection has injected.
type ConnStats struct {
	Stalls        int
	Resets        int
	PartialWrites int
	Corruptions   int
}

// WrapConn wraps c with the given fault configuration and an independent
// RNG stream labelled by id (use a distinct id per connection).
func WrapConn(c net.Conn, cfg Config, id uint64) *Conn {
	return &Conn{Conn: c, cfg: cfg, rng: stats.NewRNG(cfg.Seed).Split(id)}
}

// Stats snapshots the injected-fault counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// decide draws the fault plan for one operation under the lock, so
// concurrent Read/Write keep the RNG stream race-free.
type plan struct {
	stall   time.Duration
	reset   bool
	partial int // bytes to deliver before failing (-1: no partial fault)
	corrupt int // byte index to flip (-1: none)
}

func (c *Conn) decide(n int, isWrite bool) (plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return plan{}, ErrInjectedReset
	}
	p := plan{partial: -1, corrupt: -1}
	if c.cfg.StallProb > 0 && c.rng.Bool(c.cfg.StallProb) {
		span := c.cfg.StallMax - c.cfg.StallMin
		d := c.cfg.StallMin
		if span > 0 {
			d += time.Duration(c.rng.Float64() * float64(span))
		}
		p.stall = d
		c.stats.Stalls++
	}
	if c.cfg.ResetProb > 0 && c.rng.Bool(c.cfg.ResetProb) {
		p.reset = true
		c.dead = true
		c.stats.Resets++
		return p, nil
	}
	if isWrite && n > 1 && c.cfg.PartialWriteProb > 0 && c.rng.Bool(c.cfg.PartialWriteProb) {
		p.partial = 1 + c.rng.Intn(n-1) // strict prefix, never the full buffer
		c.dead = true
		c.stats.PartialWrites++
		return p, nil
	}
	if isWrite && n > 0 && c.cfg.CorruptProb > 0 && c.rng.Bool(c.cfg.CorruptProb) {
		p.corrupt = c.rng.Intn(n * 8) // bit index
		c.stats.Corruptions++
	}
	return p, nil
}

// Read applies stalls and resets to the receive path.
func (c *Conn) Read(b []byte) (int, error) {
	p, err := c.decide(len(b), false)
	if err != nil {
		return 0, err
	}
	if p.stall > 0 {
		time.Sleep(p.stall)
	}
	if p.reset {
		_ = c.Conn.Close() // the injected reset is the error that matters
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(b)
}

// Write applies stalls, resets, partial writes, and corruption to the send
// path. Injected failures drop the buffer before the underlying write, so
// an error return means none of b's framing reached the peer intact.
func (c *Conn) Write(b []byte) (int, error) {
	p, err := c.decide(len(b), true)
	if err != nil {
		return 0, err
	}
	if p.stall > 0 {
		time.Sleep(p.stall)
	}
	if p.reset {
		_ = c.Conn.Close() // the injected reset is the error that matters
		return 0, ErrInjectedReset
	}
	if p.partial >= 0 {
		n, werr := c.Conn.Write(b[:p.partial])
		_ = c.Conn.Close() // tear down after the torn prefix, like a mid-segment RST
		if werr != nil {
			return n, werr
		}
		return n, ErrInjectedReset
	}
	if p.corrupt >= 0 {
		mangled := make([]byte, len(b))
		copy(mangled, b)
		mangled[p.corrupt/8] ^= 1 << (p.corrupt % 8)
		return c.Conn.Write(mangled)
	}
	return c.Conn.Write(b)
}

// Listener wraps a net.Listener: Accept can fail transiently, and accepted
// connections are fault-wrapped with independent RNG streams.
type Listener struct {
	net.Listener
	cfg Config

	mu       sync.Mutex
	rng      *stats.RNG
	nextID   uint64
	accepted int
	failed   int
}

// WrapListener wraps ln with the given fault configuration. Accepted
// connections inject server-side faults from per-connection streams.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, rng: stats.NewRNG(cfg.Seed).Split(^uint64(0))}
}

// Accept returns the next fault-wrapped connection, or a transient
// (net.Error Temporary) injected failure.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	fail := l.cfg.AcceptFailProb > 0 && l.rng.Bool(l.cfg.AcceptFailProb)
	if fail {
		l.failed++
	}
	l.mu.Unlock()
	if fail {
		return nil, errTransientAccept{}
	}
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.nextID++
	id := l.nextID
	l.accepted++
	l.mu.Unlock()
	return WrapConn(conn, l.cfg, id), nil
}

// AcceptStats reports accepted connections and injected accept failures.
func (l *Listener) AcceptStats() (accepted, failed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted, l.failed
}

// Dialer wraps dial so every connection it returns injects client-side
// faults from an independent stream (one per dialed connection).
func Dialer(dial func() (net.Conn, error), cfg Config) func() (net.Conn, error) {
	var mu sync.Mutex
	var next uint64
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		next++
		id := next
		mu.Unlock()
		return WrapConn(conn, cfg, id), nil
	}
}
