package faultnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// pipePair returns a fault-wrapped client end and the raw server end of an
// in-memory duplex stream.
func pipePair(cfg Config, id uint64) (*Conn, net.Conn) {
	client, server := net.Pipe()
	return WrapConn(client, cfg, id), server
}

func TestCleanPassThrough(t *testing.T) {
	fc, server := pipePair(Config{Seed: 1}, 1)
	defer fc.Close()
	defer server.Close()
	go func() {
		buf := make([]byte, 5)
		if _, err := server.Read(buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := server.Write(buf); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 5)
	if _, err := fc.Read(got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("round trip = %q", got)
	}
}

func TestResetIsSticky(t *testing.T) {
	fc, server := pipePair(Config{Seed: 7, ResetProb: 1}, 1)
	defer server.Close()
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("first write error = %v, want injected reset", err)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write error = %v, want injected reset", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read error = %v, want injected reset", err)
	}
	if st := fc.Stats(); st.Resets != 1 {
		t.Fatalf("resets = %d, want 1", st.Resets)
	}
}

func TestPartialWriteDeliversStrictPrefix(t *testing.T) {
	fc, server := pipePair(Config{Seed: 3, PartialWriteProb: 1}, 1)
	defer server.Close()
	payload := []byte("0123456789")
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(payload))
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	n, err := fc.Write(payload)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial write n = %d, want strict prefix of %d", n, len(payload))
	}
	select {
	case b := <-got:
		if !bytes.Equal(b, payload[:len(b)]) {
			t.Fatalf("delivered bytes %q are not a prefix of %q", b, payload)
		}
	case <-time.After(time.Second):
		t.Fatal("server never observed the prefix")
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	fc, server := pipePair(Config{Seed: 9, CorruptProb: 1}, 1)
	defer fc.Close()
	defer server.Close()
	payload := []byte("heartbeat-frame")
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(payload))
		n, _ := server.Read(buf)
		got <- buf[:n]
	}()
	if _, err := fc.Write(payload); err != nil {
		t.Fatalf("corrupting write failed: %v", err)
	}
	b := <-got
	if len(b) != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", len(b), len(payload))
	}
	diffBits := 0
	for i := range b {
		x := b[i] ^ payload[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() ConnStats {
		cfg := Config{Seed: 42, ResetProb: 0.2, CorruptProb: 0.3}
		fc, server := pipePair(cfg, 5)
		defer fc.Close()
		defer server.Close()
		go func() {
			buf := make([]byte, 64)
			for {
				if _, err := server.Read(buf); err != nil {
					return
				}
			}
		}()
		for i := 0; i < 50; i++ {
			if _, err := fc.Write([]byte("abcdef")); err != nil {
				break
			}
		}
		return fc.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault schedules: %+v vs %+v", a, b)
	}
	if a.Resets == 0 && a.Corruptions == 0 {
		t.Fatalf("schedule injected no faults at all: %+v", a)
	}
}

func TestAcceptFailureIsTemporary(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(base, Config{Seed: 11, AcceptFailProb: 1})
	defer ln.Close()
	_, err = ln.Accept()
	if err == nil {
		t.Fatal("accept succeeded under AcceptFailProb=1")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Temporary() { // Temporary is the retry contract here
		t.Fatalf("accept error %v is not a temporary net.Error", err)
	}
	if _, failed := ln.AcceptStats(); failed == 0 {
		t.Fatal("accept failure not counted")
	}
}

func TestDialerWrapsEachConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	dial := Dialer(func() (net.Conn, error) {
		return net.Dial("tcp", ln.Addr().String())
	}, Config{Seed: 1, ResetProb: 1})
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("dialer returned %T, want *faultnet.Conn", c)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("wrapped dial write error = %v", err)
	}
}
