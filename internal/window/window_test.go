package window

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/metric"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{DefaultConfig(), true},
		{Config{Ticks: 1, TicksPerEpoch: 1}, true},
		{Config{Ticks: 0, TicksPerEpoch: 60}, false},
		{Config{Ticks: 60, TicksPerEpoch: 0}, false},
		{Config{Ticks: 60, TicksPerEpoch: 60, MaxDims: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestGeometry(t *testing.T) {
	cfg := Config{Ticks: 60, TicksPerEpoch: 60}
	if got := cfg.EpochOf(0); got != 0 {
		t.Fatalf("EpochOf(0) = %d", got)
	}
	if got := cfg.EpochOf(59); got != 0 {
		t.Fatalf("EpochOf(59) = %d", got)
	}
	if got := cfg.EpochOf(60); got != 1 {
		t.Fatalf("EpochOf(60) = %d", got)
	}
	if got := cfg.StartTick(3); got != 180 {
		t.Fatalf("StartTick(3) = %d", got)
	}
	// Round-trip: every tick of epoch e maps back to e.
	for e := epoch.Index(0); e < 4; e++ {
		start := cfg.StartTick(e)
		for off := Tick(0); off < Tick(cfg.TicksPerEpoch); off++ {
			if cfg.EpochOf(start+off) != e {
				t.Fatalf("EpochOf(%d) != %d", start+off, e)
			}
		}
	}
	for tk := Tick(0); tk < 200; tk++ {
		want := (tk+1)%60 == 0
		if cfg.EpochBoundary(tk) != want {
			t.Fatalf("EpochBoundary(%d) = %v, want %v", tk, cfg.EpochBoundary(tk), want)
		}
	}
}

// TestSubTickDeterministicAndInRange: the derived sub-epoch offset is a pure
// function of the session ID and always lands inside the epoch.
func TestSubTickDeterministicAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		id := rng.Uint64()
		a := SubTick(id, 60)
		b := SubTick(id, 60)
		if a != b {
			t.Fatalf("SubTick(%d) not deterministic: %d vs %d", id, a, b)
		}
		if a < 0 || a >= 60 {
			t.Fatalf("SubTick(%d) = %d out of [0,60)", id, a)
		}
		seen[a]++
	}
	// Uniformity sanity: every minute of the hour receives some sessions.
	for m := 0; m < 60; m++ {
		if seen[m] == 0 {
			t.Fatalf("minute %d received no sessions across 10k draws", m)
		}
	}
}

func randomLite(rng *rand.Rand, valRange int) cluster.Lite {
	var l cluster.Lite
	for d := range l.Attrs {
		l.Attrs[d] = int32(rng.Intn(valRange))
	}
	l.Bits = uint8(rng.Intn(16))
	l.Failed = l.Bits&(1<<metric.JoinFailure) != 0
	return l
}

// assertSnapshotEqualsRebuild compares the engine's incrementally maintained
// snapshot against a cluster.NewTable rebuild over the same window sessions:
// epoch, root, session order, cardinality, and every cell in both lookup
// directions.
func assertSnapshotEqualsRebuild(t *testing.T, eng *Engine, maxDims int) {
	t.Helper()
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	rebuilt := cluster.NewTable(snap.Epoch, append([]cluster.Lite(nil), snap.Sessions...), maxDims)
	defer rebuilt.Release()

	if snap.Len() != rebuilt.Len() {
		t.Fatalf("snapshot Len=%d, rebuilt Len=%d", snap.Len(), rebuilt.Len())
	}
	if snap.Root != rebuilt.Root {
		t.Fatalf("snapshot Root=%+v, rebuilt Root=%+v", snap.Root, rebuilt.Root)
	}
	rebuilt.ForEach(func(k attr.Key, c cluster.Counts) {
		if got := snap.Get(k); got != c {
			t.Fatalf("key %v snapshot %+v, rebuilt %+v", k, got, c)
		}
	})
	snap.ForEach(func(k attr.Key, c cluster.Counts) {
		if got := rebuilt.Get(k); got != c {
			t.Fatalf("snapshot-only key %v (%+v vs %+v)", k, c, got)
		}
	})
}

// TestWindowEqualsRebuild drives the engine through several windows' worth of
// ticks — including empty ones — and checks after every advance that the
// incrementally maintained snapshot is exactly the table a from-scratch
// rebuild over the live window produces.
func TestWindowEqualsRebuild(t *testing.T) {
	for _, maxDims := range []int{0, 2} {
		cfg := Config{Ticks: 5, TicksPerEpoch: 5, MaxDims: maxDims}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if err := eng.Start(0); err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(29))
		want := make(map[Tick][]cluster.Lite)
		for tk := Tick(0); tk < 23; tk++ {
			n := rng.Intn(40)
			if tk%7 == 3 {
				n = 0 // empty sub-bucket: the window must still slide
			}
			for i := 0; i < n; i++ {
				l := randomLite(rng, 4)
				if err := eng.Observe(l); err != nil {
					t.Fatal(err)
				}
				want[tk] = append(want[tk], l)
			}
			if _, err := eng.Advance(); err != nil {
				t.Fatal(err)
			}

			// Independent window accounting.
			lo := tk - Tick(cfg.Ticks) + 1
			if lo < 0 {
				lo = 0
			}
			var wantLites []cluster.Lite
			for wt := lo; wt <= tk; wt++ {
				wantLites = append(wantLites, want[wt]...)
			}
			if eng.Sessions() != len(wantLites) {
				t.Fatalf("tick %d: Sessions=%d, want %d", tk, eng.Sessions(), len(wantLites))
			}
			snap, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if len(snap.Sessions) != len(wantLites) {
				t.Fatalf("tick %d: snapshot carries %d sessions, want %d", tk, len(snap.Sessions), len(wantLites))
			}
			for i := range wantLites {
				if snap.Sessions[i] != wantLites[i] {
					t.Fatalf("tick %d: session %d out of tick order", tk, i)
				}
			}
			if snap.Epoch != cfg.EpochOf(tk) {
				t.Fatalf("tick %d: snapshot epoch %d, want %d", tk, snap.Epoch, cfg.EpochOf(tk))
			}
			assertSnapshotEqualsRebuild(t, eng, maxDims)
		}
	}
}

// TestAdvanceTo: gap ticks are sealed one by one, each visible to eval, and
// empty sub-buckets slide sessions out of the window.
func TestAdvanceTo(t *testing.T) {
	cfg := Config{Ticks: 3, TicksPerEpoch: 3}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Start(10); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		if err := eng.Observe(randomLite(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	var sealed []Tick
	if err := eng.AdvanceTo(15, func(s Tick) error { sealed = append(sealed, s); return nil }); err != nil {
		t.Fatal(err)
	}
	wantSealed := []Tick{10, 11, 12, 13, 14}
	if len(sealed) != len(wantSealed) {
		t.Fatalf("sealed %v, want %v", sealed, wantSealed)
	}
	for i := range sealed {
		if sealed[i] != wantSealed[i] {
			t.Fatalf("sealed %v, want %v", sealed, wantSealed)
		}
	}
	if eng.Tick() != 15 {
		t.Fatalf("open tick %d, want 15", eng.Tick())
	}
	// Ticks 13,14 sealed empty; window is {13,14,12}? No — window holds the
	// last 3 sealed ticks {12,13,14}, and tick 10's sessions expired.
	if eng.Sessions() != 0 {
		t.Fatalf("Sessions=%d after the populated tick slid out, want 0", eng.Sessions())
	}
	// AdvanceTo to the current open tick is a no-op.
	if err := eng.AdvanceTo(15, nil); err != nil {
		t.Fatal(err)
	}
	// Going backwards is an error.
	if err := eng.AdvanceTo(14, nil); err == nil {
		t.Fatal("AdvanceTo backwards did not fail")
	}
}

func TestEngineErrors(t *testing.T) {
	eng, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Observe(cluster.Lite{}); err == nil {
		t.Fatal("Observe before Start did not fail")
	}
	if _, err := eng.Advance(); err == nil {
		t.Fatal("Advance before Start did not fail")
	}
	if _, err := eng.Snapshot(); err == nil {
		t.Fatal("Snapshot before Start did not fail")
	}
	if err := eng.AdvanceTo(1, nil); err == nil {
		t.Fatal("AdvanceTo before Start did not fail")
	}
	if err := eng.Start(-1); err == nil {
		t.Fatal("Start at a negative tick did not fail")
	}
	if err := eng.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(0); err == nil {
		t.Fatal("second Start did not fail")
	}
	if _, err := eng.Snapshot(); err == nil {
		t.Fatal("Snapshot before the first Advance did not fail")
	}

	if _, err := New(Config{Ticks: 0, TicksPerEpoch: 60}); err == nil {
		t.Fatal("New with invalid config did not fail")
	}
}

// TestSnapshotBorrowed: consecutive snapshots reuse the engine's scratch, and
// the snapshot stays coherent with the engine state it was taken from.
func TestSnapshotBorrowed(t *testing.T) {
	cfg := Config{Ticks: 4, TicksPerEpoch: 4}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Start(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for tk := 0; tk < 10; tk++ {
		for i := 0; i < 15; i++ {
			if err := eng.Observe(randomLite(rng, 3)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Advance(); err != nil {
			t.Fatal(err)
		}
		s1, err := eng.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := eng.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if s1.Len() != s2.Len() || len(s1.Sessions) != len(s2.Sessions) {
			t.Fatalf("consecutive snapshots disagree: %d/%d keys, %d/%d sessions",
				s1.Len(), s2.Len(), len(s1.Sessions), len(s2.Sessions))
		}
	}
}
