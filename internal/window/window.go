// Package window maintains the cluster count state of a sliding sub-epoch
// window incrementally, so problem/critical detection can run every minute
// instead of every hour without recomputing the hour.
//
// The paper's analysis (and core.AnalyzeEpoch) is batch: it rebuilds the
// full attribute-subset count table once per one-hour epoch, which both
// bounds detection latency below by an hour and pays the dominant cost —
// the 127-mask subset enumeration per session — for the whole hour on
// every evaluation. Here sessions instead land in per-tick sub-bucket
// cktable.Tables (one tick = one minute at the default geometry), each
// enumerated exactly once, and the window total is maintained by the
// engine pair cktable.Table.Merge / cktable.Table.Unmerge: advancing the
// window by one tick folds the tick that entered and subtracts the tick
// that expired — O(sub-bucket), not O(window).
//
// Determinism: the window clock is driven entirely by the tick indexes the
// caller derives from session/heartbeat timestamps — this package never
// reads the wall clock (it sits inside the vqlint wallclock cone), and the
// window table is exactly equal, as a key→counts mapping, to a table
// rebuilt from the live sub-buckets (proven bit-for-bit by the fuzz
// harnesses here and in cktable). At every full-epoch boundary with an
// epoch-aligned geometry the Snapshot is therefore analysis-equivalent to
// the batch path over the same sessions in the same order.
package window

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core/cktable"
	"repro/internal/epoch"
)

// Tick is a global sub-bucket index. With TicksPerEpoch = T, epoch e spans
// ticks [e*T, (e+1)*T); tick t therefore belongs to epoch t/T.
type Tick int64

// Config fixes the window geometry.
type Config struct {
	// Ticks is the window length in sub-buckets (60 one-minute ticks = the
	// paper's one-hour analysis horizon).
	Ticks int
	// TicksPerEpoch subdivides one epoch (60 = one-minute sub-buckets of a
	// one-hour epoch).
	TicksPerEpoch int
	// MaxDims caps the enumerated attribute-subset sizes (0 = all seven,
	// the paper's full hierarchy).
	MaxDims int
}

// DefaultConfig returns the one-hour window at one-minute ticks.
func DefaultConfig() Config { return Config{Ticks: 60, TicksPerEpoch: 60} }

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Ticks < 1:
		return fmt.Errorf("window: Ticks %d < 1", c.Ticks)
	case c.TicksPerEpoch < 1:
		return fmt.Errorf("window: TicksPerEpoch %d < 1", c.TicksPerEpoch)
	case c.MaxDims < 0:
		return fmt.Errorf("window: negative MaxDims %d", c.MaxDims)
	}
	return nil
}

// EpochOf returns the epoch containing tick t (t must be non-negative, as
// session epochs are).
func (c Config) EpochOf(t Tick) epoch.Index {
	per := Tick(c.TicksPerEpoch)
	if per < 1 {
		per = 1 // unvalidated zero geometry degenerates to one epoch per tick
	}
	return epoch.Index(t / per)
}

// StartTick returns the first tick of epoch e.
func (c Config) StartTick(e epoch.Index) Tick {
	return Tick(e) * Tick(c.TicksPerEpoch)
}

// EpochBoundary reports whether t is the last tick of its epoch — the tick
// whose close makes the window line up with a full batch epoch when
// Ticks == TicksPerEpoch.
func (c Config) EpochBoundary(t Tick) bool {
	per := Tick(c.TicksPerEpoch)
	if per < 1 {
		per = 1
	}
	return (t+1)%per == 0
}

// SubTick derives a deterministic sub-epoch tick offset in
// [0, ticksPerEpoch) from a session ID — the stand-in for a heartbeat
// arrival timestamp when the trace format carries only the epoch (the
// synthetic generator and the v1 trace codec both do). The mix is
// splitmix64's finalizer, so offsets are uniform and reproducible across
// runs and architectures.
func SubTick(id uint64, ticksPerEpoch int) int {
	if ticksPerEpoch < 1 {
		ticksPerEpoch = 1
	}
	x := id + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(ticksPerEpoch))
}

// bucket is one sub-bucket of the window: the tick's own count table (kept
// alive so it can be unmerged when the tick expires) plus its retained
// session digests and root tallies.
type bucket struct {
	tick  Tick
	ck    *cktable.Table
	root  cktable.Counts
	lites []cluster.Lite
}

// Engine is the incremental sliding-window state. It is single-goroutine
// (the streaming detector drives it from one analysis goroutine, exactly
// like the batch pipeline's analysis stage); it is not safe for concurrent
// use.
type Engine struct {
	cfg     Config
	maxDims int

	started bool
	cur     bucket // the accumulating (open) tick

	// win holds the closed sub-buckets currently in the window, oldest
	// first, at most cfg.Ticks of them.
	win []bucket

	// total is the window-wide count table (sum of win's sub-buckets) and
	// root its window-wide root tallies.
	total *cktable.Table
	root  cktable.Counts

	// winLites is the Snapshot scratch: the window's session digests
	// concatenated in tick order, reused across snapshots.
	winLites []cluster.Lite

	// Observed counts sessions observed; Sealed counts sealed ticks.
	Observed int
	Sealed   int
}

// New builds an engine for the given geometry.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Normalize exactly as cluster.NewTable does, so sub-bucket tables and
	// batch-built tables enumerate the same masks.
	maxDims := cfg.MaxDims
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}
	return &Engine{
		cfg:     cfg,
		maxDims: maxDims,
		total:   cktable.Acquire(0, maxDims),
	}, nil
}

// Config returns the engine geometry.
func (e *Engine) Config() Config { return e.cfg }

// Start opens the first tick. Must be called once before Observe/Advance.
func (e *Engine) Start(t Tick) error {
	if e.started {
		return fmt.Errorf("window: Start called twice")
	}
	if t < 0 {
		return fmt.Errorf("window: negative start tick %d", t)
	}
	e.started = true
	e.openBucket(t)
	return nil
}

// Tick returns the currently accumulating tick.
func (e *Engine) Tick() Tick { return e.cur.tick }

// Sessions returns the number of sessions in the closed window (the open
// tick's sessions are not yet part of the window).
func (e *Engine) Sessions() int {
	n := 0
	for i := range e.win {
		n += len(e.win[i].lites)
	}
	return n
}

// Pending returns the number of sessions observed into the open tick (not
// yet part of the window).
func (e *Engine) Pending() int { return len(e.cur.lites) }

// Observe adds one digested session to the open tick.
func (e *Engine) Observe(l cluster.Lite) error {
	if !e.started {
		return fmt.Errorf("window: Observe before Start")
	}
	e.cur.root.Add(l.Bits, l.Failed)
	e.cur.ck.AddSession(l.Attrs, l.Bits, l.Failed)
	e.cur.lites = append(e.cur.lites, l)
	e.Observed++
	return nil
}

// Advance seals the open tick into the window — one Merge of the tick's
// sub-bucket table into the window total, one Unmerge of the sub-bucket
// that slid out — and opens the next tick. It returns the tick just
// sealed; the caller evaluates the window (Snapshot) between Advance
// calls. Cost is O(entering sub-bucket + expiring sub-bucket), never
// O(window).
func (e *Engine) Advance() (Tick, error) {
	if !e.started {
		return 0, fmt.Errorf("window: Advance before Start")
	}
	sealed := e.cur.tick

	e.total.Merge(e.cur.ck)
	e.root.Merge(e.cur.root)
	e.win = append(e.win, e.cur)

	if len(e.win) > e.cfg.Ticks {
		old := e.win[0]
		copy(e.win, e.win[1:])
		e.win = e.win[:len(e.win)-1]
		e.total.Unmerge(old.ck)
		e.root.Sub(old.root)
		old.ck.Release()
		// The expired lites slice seeds the next open bucket's digest
		// buffer, so steady-state ticks append into recycled capacity.
		e.openRecycled(sealed+1, old.lites[:0])
	} else {
		e.openBucket(sealed + 1)
	}
	e.Sealed++
	return sealed, nil
}

// AdvanceTo seals ticks until the open tick is t, calling eval with each
// sealed tick (empty sub-buckets included — a minute with no sessions
// still slides the window and still re-evaluates it). No-op when t is the
// open tick already.
func (e *Engine) AdvanceTo(t Tick, eval func(sealed Tick) error) error {
	if !e.started {
		return fmt.Errorf("window: AdvanceTo before Start")
	}
	if t < e.cur.tick {
		return fmt.Errorf("window: tick %d before open tick %d", t, e.cur.tick)
	}
	for e.cur.tick < t {
		sealed, err := e.Advance()
		if err != nil {
			return err
		}
		if eval != nil {
			if err := eval(sealed); err != nil {
				return err
			}
		}
	}
	return nil
}

// openBucket opens a fresh sub-bucket at tick t.
func (e *Engine) openBucket(t Tick) {
	e.openRecycled(t, nil)
}

func (e *Engine) openRecycled(t Tick, lites []cluster.Lite) {
	sessionsHint := 0
	if n := len(e.win); n > 0 {
		sessionsHint = len(e.win[n-1].lites)
	}
	e.cur = bucket{
		tick:  t,
		ck:    cktable.Acquire(sessionsHint, e.maxDims),
		lites: lites,
	}
}

// Snapshot assembles the closed window as a cluster.Table for analysis
// (core.AnalyzeEpochTable, hhh.DetectFromTable). The table's Epoch is the
// epoch containing the last sealed tick; its Sessions are the window's
// digests in tick order — the order the batch path would see them in.
//
// The returned table BORROWS the engine's storage: it is valid until the
// next Observe/Advance and must not be Released (the engine owns the
// count table for the lifetime of the window).
func (e *Engine) Snapshot() (*cluster.Table, error) {
	if !e.started {
		return nil, fmt.Errorf("window: Snapshot before Start")
	}
	if len(e.win) == 0 {
		return nil, fmt.Errorf("window: Snapshot before the first Advance")
	}
	e.winLites = e.winLites[:0]
	for i := range e.win {
		e.winLites = append(e.winLites, e.win[i].lites...)
	}
	last := e.win[len(e.win)-1].tick
	return cluster.AssembleTable(e.cfg.EpochOf(last), e.winLites, e.maxDims, e.total, e.root), nil
}

// Close releases every table the engine holds. The engine must not be used
// afterwards.
func (e *Engine) Close() {
	if e.total != nil {
		e.total.Release()
		e.total = nil
	}
	for i := range e.win {
		e.win[i].ck.Release()
	}
	e.win = nil
	if e.started && e.cur.ck != nil {
		e.cur.ck.Release()
		e.cur.ck = nil
	}
}
