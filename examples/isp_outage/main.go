// ISP outage: inject a known 6-hour buffering outage at a specific popular
// ISP on top of the normal background, then show the paper's reactive
// strategy (§5.3) detecting the event after its first hour and alleviating
// the remainder — the "do we have enough time to observe and react?"
// question of §2.
//
//	go run ./examples/isp_outage
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A two-day trace with the outage at hours 20–26.
	cfg := synth.DefaultConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 48}
	cfg.SessionsPerEpoch = 3000
	cfg.Events.Trace = cfg.Trace

	// Pick a popular ASN that no chronic background event already
	// anchors, so the detection timeline below is attributable to our
	// injected outage alone. The world and schedule are deterministic in
	// the seed, so we can build a baseline generator to inspect them, then
	// rebuild with the extra event.
	baseline, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	anchored := map[int32]bool{}
	for _, ev := range baseline.Schedule().Events {
		if ev.Anchor.Mask.Has(attr.ASN) {
			anchored[ev.Anchor.Vals[attr.ASN]] = true
		}
	}
	victim := int32(-1)
	for id := int32(0); id < 20; id++ { // popularity-ranked: stay observable
		if !anchored[id] {
			victim = id
			break
		}
	}
	if victim < 0 {
		log.Fatal("no suitable un-anchored ASN found")
	}
	anchor := attr.NewKey(map[attr.Dim]int32{attr.ASN: victim})
	outage := epoch.Range{Start: 20, End: 26}

	cfg.Events.Extra = []events.Event{{
		Metric:    metric.BufRatio,
		Anchor:    anchor,
		Severity:  0.6,
		Intervals: []epoch.Range{outage},
		Tag:       "injected-wireless-outage",
	}}

	g, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Injected a 6-hour buffering outage at %s (hours %d-%d)\n\n",
		g.World().Space().FormatKey(anchor), outage.Start, outage.End)

	tr, err := core.AnalyzeGenerator(g, core.DefaultConfig(cfg.SessionsPerEpoch))
	if err != nil {
		log.Fatal(err)
	}

	// When was the victim flagged as a critical cluster?
	h := analysis.BuildHistory(tr, metric.BufRatio)
	ks := h.Critical[anchor]
	if ks == nil {
		log.Fatal("the outage was not detected as a critical cluster; " +
			"try a larger SessionsPerEpoch")
	}
	fmt.Printf("Detected %s as a critical cluster in epochs %v\n",
		g.World().Space().FormatKey(anchor), ks.Epochs)
	streaks := h.Streaks(analysis.CriticalClusters, anchor)
	for _, st := range streaks {
		if st.Start >= outage.Start && st.Start < outage.End {
			fmt.Printf("Outage streak: hours %d-%d — a reactive controller acting after the\n"+
				"first hour has %d hours of remaining outage to alleviate.\n",
				st.Start, st.End, st.Len()-1)
		}
	}

	// Quantify: problem sessions attributed to the victim during the
	// outage, and what reacting after hour one saves.
	var attributed, alleviatable float64
	for i, e := range ks.Epochs {
		if !outage.Contains(e) {
			continue
		}
		er := tr.At(e)
		ms := &er.Metrics[metric.BufRatio]
		a := ks.AttrProblems[i] - ks.AttrSessions[i]*ms.GlobalRatio
		if a < 0 {
			a = 0
		}
		attributed += ks.AttrProblems[i]
		if e != outage.Start {
			alleviatable += a
		}
	}
	fmt.Printf("\nDuring the outage the victim ISP accounted for %.0f problem sessions;\n"+
		"reacting after one hour would have alleviated ~%.0f of them.\n", attributed, alleviatable)
}
