// ABR comparison: the client-adaptation ecosystem the paper's related work
// surveys (§7 — rate adaptation evaluations, FESTIVE). Four player
// algorithms watch the same videos over the same bursty last-mile networks;
// the table shows the classic trade-offs — fixed-at-HD stalls, rate-based
// players flap, FESTIVE trades a little bitrate for stability — and how
// each shows up in the paper's four QoE metrics.
//
//	go run ./examples/abr_comparison
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/metric"
	"repro/internal/player"
	"repro/internal/report"
	"repro/internal/stats"
)

const (
	sessionsPerABR = 400
	meanKbps       = 2000 // struggling last mile for a 3000 kbps top rung
	viewSeconds    = 600
)

func main() {
	log.SetFlags(0)
	ladder := []float64{300, 700, 1500, 3000}
	abrs := []func() player.ABR{
		func() player.ABR { return player.Fixed{Index: 3} },
		func() player.ABR { return player.RateBased{} },
		func() player.ABR { return player.BufferBased{} },
		func() player.ABR { return &player.Festive{} },
	}

	type row struct {
		name                 string
		bitrate, buf, joinMS float64
		stalls, switches     float64
		lowBitrateProblems   int
		bufferingProblems    int
	}
	var rows []row
	th := metric.Default()

	for _, mk := range abrs {
		var r row
		r.name = mk().Name()
		for i := 0; i < sessionsPerABR; i++ {
			// Identical network draws per session index across algorithms.
			net := player.NewMarkovNetwork(stats.NewRNG(uint64(1000+i)), meanKbps, 15)
			res, err := player.Play(stats.NewRNG(uint64(i)), ladder, mk(), net,
				player.DefaultConfig(), viewSeconds, 0, 0.03)
			if err != nil {
				log.Fatal(err)
			}
			if res.QoE.JoinFailed {
				continue
			}
			r.bitrate += res.QoE.BitrateKbps
			r.buf += res.QoE.BufRatio
			r.joinMS += res.QoE.JoinTimeMS
			r.stalls += float64(res.Rebuffers)
			r.switches += float64(res.Switches)
			if res.QoE.Problem(metric.Bitrate, th) {
				r.lowBitrateProblems++
			}
			if res.QoE.Problem(metric.BufRatio, th) {
				r.bufferingProblems++
			}
		}
		n := float64(sessionsPerABR)
		r.bitrate /= n
		r.buf /= n
		r.joinMS /= n
		r.stalls /= n
		r.switches /= n
		rows = append(rows, r)
	}

	t := report.Table{
		Title: fmt.Sprintf("Four ABR algorithms, %d sessions each over a bursty %d kbps last mile",
			sessionsPerABR, meanKbps),
		Columns: []string{"ABR", "AvgBitrateKbps", "MeanBufRatio", "MeanJoinMS",
			"Stalls/Session", "Switches/Session", "BitrateProblems", "BufferingProblems"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.bitrate, r.buf, r.joinMS, r.stalls, r.switches,
			r.lowBitrateProblems, r.bufferingProblems)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading: fixed-at-HD maximises bitrate but stalls constantly (the paper's")
	fmt.Println("buffering-ratio problems); adaptive players trade rungs for smoothness;")
	fmt.Println("FESTIVE's harmonic-mean estimate and gradual switching cut oscillation.")
}
