// Quickstart: generate a synthetic video-quality dataset, run the paper's
// clustering analysis, and print the headline structure — Table 1 plus the
// top critical clusters per metric with human-readable attribute names.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Generating a 3-day synthetic trace and running the CoNEXT'13 analysis...")

	study, err := repro.NewStudy(repro.QuickConfig(1))
	if err != nil {
		log.Fatal(err)
	}

	// Paper Table 1: problem vs critical cluster counts and coverage.
	if _, err := study.Suite().Table1(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The few clusters that explain the most problem sessions.
	space := study.AttrSpace()
	for _, m := range []repro.Metric{repro.BufRatio, repro.JoinFailure} {
		fmt.Printf("\nTop critical clusters — %s:\n", m)
		top := study.TopCritical(m, 5)
		for i, k := range top {
			fmt.Printf("  %d. %s\n", i+1, space.FormatKey(k))
		}
		// The paper's what-if: how much would fixing them help?
		fmt.Printf("  fixing these %d clusters would alleviate %.1f%% of %s problem sessions\n",
			len(top), 100*study.FixClusters(m, top), m)
	}
}
