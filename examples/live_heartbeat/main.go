// Live heartbeat pipeline: the full measurement stack on one machine —
// simulated adaptive-bitrate players (package player) experience CDN
// deliveries (package cdn), report heartbeats over real TCP to a collector
// (package heartbeat), and the assembled sessions are clustered exactly
// like a trace from disk. One CDN is deliberately overloaded so the
// analysis has something to find.
//
//	go run ./examples/live_heartbeat
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/attr"
	"repro/internal/cdn"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/metric"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/world"
)

const (
	numSessions = 4000
	brokenCDN   = int32(3) // this CDN runs far past capacity tonight
)

func main() {
	log.SetFlags(0)
	w, err := world.New(world.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	delivery, err := cdn.New(w, cdn.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Collector side.
	var mu sync.Mutex
	var collected []session.Session
	collector := heartbeat.NewCollector(func(s session.Session) {
		mu.Lock()
		collected = append(collected, s)
		mu.Unlock()
	})
	if err := collector.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	addr := collector.Addr().String()
	fmt.Printf("collector listening on %s; driving %d simulated players (CDN %s overloaded)\n",
		addr, numSessions, w.CDNs[brokenCDN].Name)

	// Client side: a handful of concurrent reporters, as real player fleets
	// multiplex through shared beacon connections.
	const reporters = 4
	var wg sync.WaitGroup
	for rep := 0; rep < reporters; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				log.Printf("dial: %v", err)
				return
			}
			defer conn.Close()
			em := &heartbeat.Emitter{W: heartbeat.NewWriter(conn), ProgressEvery: 2}
			rng := stats.NewRNG(42).Split(uint64(rep))
			abrs := []player.ABR{player.RateBased{}, player.BufferBased{}}
			for i := rep; i < numSessions; i += reporters {
				attrs := w.SampleAttrs(rng)
				site := &w.Sites[attrs[attr.Site]]
				load := 0.7
				if attrs[attr.CDN] == brokenCDN {
					load = 1.8 // overloaded
				}
				d := delivery.Deliver(rng, attrs[attr.CDN], attrs[attr.ASN], load, site.LowPriority)
				netModel := player.NewMarkovNetwork(rng.Split(uint64(i)), d.ThroughputKbps, 20)
				res, err := player.Play(rng, site.BitrateLadder, abrs[i%len(abrs)], netModel,
					player.DefaultConfig(), 120+float64(rng.Intn(300)), d.FailProb, d.RTTms/1000)
				if err != nil {
					log.Printf("play: %v", err)
					return
				}
				s := session.Session{
					ID: uint64(i + 1), Epoch: 0, Attrs: attrs,
					QoE: res.QoE, EventIDs: session.NoEvents,
				}
				if err := em.EmitSession(&s); err != nil {
					log.Printf("emit: %v", err)
					return
				}
			}
		}(rep)
	}
	wg.Wait()
	if err := collector.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d sessions from the wire\n\n", len(collected))

	// Analyse the collected epoch exactly like a stored trace.
	cfg := core.DefaultConfig(len(collected))
	lites := make([]cluster.Lite, len(collected))
	for i := range collected {
		lites[i] = cluster.Digest(&collected[i], cfg.Thresholds)
	}
	res, err := core.AnalyzeEpoch(0, lites, cfg)
	if err != nil {
		log.Fatal(err)
	}

	space := w.Space()
	for _, m := range []metric.Metric{metric.BufRatio, metric.JoinFailure} {
		ms := &res.Metrics[m]
		fmt.Printf("%s: global ratio %.3f, %d problem clusters, %d critical clusters\n",
			m, ms.GlobalRatio, ms.NumProblemClusters, len(ms.Critical))
		for _, cs := range ms.Critical {
			if cs.Key.Mask.Has(attr.CDN) && cs.Key.Vals[attr.CDN] == brokenCDN {
				fmt.Printf("  → the overloaded CDN surfaced: %s (ratio %.2f over %d sessions)\n",
					space.FormatKey(cs.Key), cs.Ratio, cs.Sessions)
			}
		}
	}
}
