// Multi-CDN what-if: the paper's Table 3 join-failure anecdote — several
// presumably low-priority sites all using the same single global CDN suffer
// chronic join failures, and "could have potentially benefited from using
// multiple CDNs". This example finds those sites' critical clusters in the
// analysed trace and quantifies the paper's §5 what-if: how many problem
// sessions would contracting a second CDN (modelled as fixing those
// clusters) alleviate?
//
//	go run ./examples/multicdn_whatif
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/whatif"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	cfg := repro.QuickConfig(1)
	study, err := repro.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	suite := study.Suite()
	w := suite.Gen.World()
	space := w.Space()

	// The structurally vulnerable sites: single-CDN, low priority.
	lowPri := w.SitesWhere(func(s *world.Site) bool { return s.LowPriority })
	fmt.Printf("%d sites ride a single shared global CDN at low priority\n", len(lowPri))

	// Which of them surfaced as join-failure critical clusters?
	h := study.History(repro.JoinFailure)
	var keys []repro.Key
	for _, id := range lowPri {
		k := attr.NewKey(map[attr.Dim]int32{attr.Site: id})
		if ks := h.Critical[k]; ks != nil {
			keys = append(keys, k)
			fmt.Printf("  detected: %-12s prevalence %.0f%%  attributed failures %.0f\n",
				space.FormatKey(k), 100*h.Prevalence(analysis.CriticalClusters, k), ks.TotalProblems)
		}
	}
	if len(keys) == 0 {
		log.Fatal("no low-priority sites detected as critical; increase volume")
	}

	// The what-if (§5): fixing exactly these clusters — e.g. by adding a
	// second CDN so their sessions stop failing at elevated rates.
	o := whatif.FixKeys(suite.TR, repro.JoinFailure, toSet(keys), suite.TR.Trace)
	fmt.Printf("\nContracting a second CDN for these %d sites would alleviate %.0f problem\n"+
		"sessions — %.1f%% of all join failures in the trace.\n",
		len(keys), o.Alleviated, 100*o.Fraction())

	// Compare against the best possible cluster-directed effort of the
	// same size (top-k critical clusters by coverage).
	best := study.FixClusters(repro.JoinFailure, study.TopCritical(repro.JoinFailure, len(keys)))
	fmt.Printf("For reference, the best %d clusters by coverage would alleviate %.1f%%.\n",
		len(keys), 100*best)
}

func toSet(keys []repro.Key) map[repro.Key]bool {
	set := make(map[repro.Key]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}
