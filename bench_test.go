// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Figs. 1–2, 7–13; Tables 1–5), the ablation benchmarks
// DESIGN.md calls out, and throughput benchmarks for the substrates. The
// figure/table benchmarks run against a shared two-week dataset built once;
// each reports its headline reproduction numbers as custom metrics so
// `go test -bench=.` doubles as the experiment log behind EXPERIMENTS.md.
package repro

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/experiments"
	"repro/internal/heartbeat"
	"repro/internal/hhh"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/whatif"
	"repro/internal/window"
)

// benchConfig sizes the shared benchmark dataset: the paper's full two-week
// span at laptop volume.
func benchConfig() (synth.Config, core.Config) {
	genCfg := synth.DefaultConfig()
	genCfg.SessionsPerEpoch = 2500
	coreCfg := core.DefaultConfig(genCfg.SessionsPerEpoch)
	return genCfg, coreCfg
}

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

func suiteForBench(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		genCfg, coreCfg := benchConfig()
		benchSuite, benchErr = experiments.NewSuite(genCfg, coreCfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// --- One benchmark per paper figure ---------------------------------------

func BenchmarkFig1_MetricCDFs(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var buf05 float64
	for i := 0; i < b.N; i++ {
		cdfs, err := s.Fig1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		buf05 = cdfs[0].Exceeds(0.05)
	}
	b.ReportMetric(buf05, "frac_bufratio>5%")
}

func BenchmarkFig2_ProblemRatioTimeseries(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		series, err := s.Fig2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.Mean(series[metric.BufRatio])
	}
	b.ReportMetric(mean, "mean_bufratio_problem_ratio")
}

func BenchmarkFig7_Prevalence(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var over10 float64
	for i := 0; i < b.N; i++ {
		dists, err := s.Fig7(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		over10 = dists[metric.BufRatio].Exceeds(0.10)
	}
	b.ReportMetric(over10, "frac_clusters_prevalence>10%")
}

func BenchmarkFig8_Persistence(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var med2h float64
	for i := 0; i < b.N; i++ {
		med, _, err := s.Fig8(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		med2h = med[metric.BufRatio].Exceeds(2 - 1e-9)
	}
	b.ReportMetric(med2h, "frac_clusters_median_persist>=2h")
}

func BenchmarkFig9_ClusterCounts(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		probs, crits, err := s.Fig9(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var p, c int
		for j := range probs {
			p += probs[j]
			c += crits[j]
		}
		if p > 0 {
			ratio = float64(c) / float64(p)
		}
	}
	b.ReportMetric(ratio, "critical/problem_clusters")
}

func BenchmarkFig10_TypeBreakdown(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var siteShare float64
	for i := 0; i < b.N; i++ {
		bds, err := s.Fig10(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		bd := bds[metric.BufRatio]
		siteShare = bd.ByMask[attr.MaskOf(attr.Site)] / bd.Total
	}
	b.ReportMetric(siteShare, "bufratio_site_share")
}

func BenchmarkFig11_TopK(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var top1pct float64
	for i := 0; i < b.N; i++ {
		curves, err := s.Fig11(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		pts := curves[whatif.ByCoverage][metric.JoinFailure]
		for _, p := range pts {
			if p.Fraction == 0.01 {
				top1pct = p.Alleviated
			}
		}
	}
	b.ReportMetric(top1pct, "joinfail_alleviated_top1%")
}

func BenchmarkFig12_AttrRestricted(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var anyFull float64
	for i := 0; i < b.N; i++ {
		out, err := s.Fig12(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		pts := out["Any"]
		anyFull = pts[len(pts)-1].Alleviated
	}
	b.ReportMetric(anyFull, "joinfail_alleviated_any_full")
}

func BenchmarkFig13_Reactive(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var reactive float64
	for i := 0; i < b.N; i++ {
		res, err := s.Fig13(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		reactive = res.New
	}
	b.ReportMetric(reactive, "joinfail_reactive_alleviated")
}

// --- One benchmark per paper table -----------------------------------------

func BenchmarkTable1_CriticalReduction(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		cov = rows[metric.JoinFailure].MeanCriticalCoverage
	}
	b.ReportMetric(cov, "joinfail_critical_coverage")
}

func BenchmarkTable2_Jaccard(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var maxJ float64
	for i := 0; i < b.N; i++ {
		out, err := s.Table2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		maxJ = 0
		for _, v := range out {
			if v > maxJ {
				maxJ = v
			}
		}
	}
	b.ReportMetric(maxJ, "max_cross_metric_jaccard")
}

func BenchmarkTable3_PrevalentCauses(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		out, err := s.Table3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(out)
	}
	b.ReportMetric(float64(rows), "prevalent_critical_clusters")
}

func BenchmarkTable4_Proactive(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var ofPot float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		ofPot = rows[metric.JoinFailure].InterWeek.OfPotential
	}
	b.ReportMetric(ofPot, "joinfail_interweek_of_potential")
}

func BenchmarkTable5_Reactive(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var ofPot float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table5(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		ofPot = rows[metric.JoinFailure].OfPotential
	}
	b.ReportMetric(ofPot, "joinfail_reactive_of_potential")
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

func BenchmarkAblation_Thresholds(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := s.ThresholdSweep(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := rows[0].Coverage, rows[0].Coverage
		for _, r := range rows {
			if r.Coverage < lo {
				lo = r.Coverage
			}
			if r.Coverage > hi {
				hi = r.Coverage
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "coverage_spread_across_thresholds")
}

func BenchmarkAblation_HHHvsCritical(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		out, err := s.CompareHHH(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		gap = out.CriticalPrecision - out.HHHPrecision
	}
	b.ReportMetric(gap, "precision_gap_critical_minus_hhh")
}

func BenchmarkAblation_HiddenAttribute(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var loss float64
	for i := 0; i < b.N; i++ {
		out, err := s.HideAttribute(io.Discard, attr.ConnType)
		if err != nil {
			b.Fatal(err)
		}
		loss = out.FullCoverage - out.HiddenCoverage
	}
	b.ReportMetric(loss, "coverage_loss_hiding_conntype")
}

func BenchmarkValidation_GroundTruth(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var prec float64
	for i := 0; i < b.N; i++ {
		vals, err := s.Validate(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		prec = vals[metric.BufRatio].Precision()
	}
	b.ReportMetric(prec, "bufratio_gt_precision")
}

// --- Substrate throughput benchmarks ---------------------------------------

func BenchmarkGenerateEpoch(b *testing.B) {
	genCfg, _ := benchConfig()
	g, err := synth.New(genCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(g.EpochSessions(epoch.Index(i % 336)))
	}
	b.ReportMetric(float64(n), "sessions/epoch")
}

func BenchmarkClusterTable(b *testing.B) {
	genCfg, coreCfg := benchConfig()
	g, err := synth.New(genCfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := g.EpochSessions(10)
	lites := make([]cluster.Lite, len(batch))
	for i := range batch {
		lites[i] = cluster.Digest(&batch[i], coreCfg.Thresholds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := cluster.NewTable(10, lites, 0)
		if tbl.Len() == 0 {
			b.Fatal("empty table")
		}
		tbl.Release()
	}
}

func BenchmarkCriticalDetect(b *testing.B) {
	genCfg, coreCfg := benchConfig()
	g, err := synth.New(genCfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := g.EpochSessions(10)
	lites := make([]cluster.Lite, len(batch))
	for i := range batch {
		lites[i] = cluster.Digest(&batch[i], coreCfg.Thresholds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeEpoch(10, lites, coreCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelBenchLites caches the large digest sets BenchmarkAnalyzeEpochParallel
// analyzes, keyed by epoch size: the -cpu sweep re-enters the benchmark once
// per GOMAXPROCS value and must not pay million-session synthesis each time.
var (
	parallelBenchMu    sync.Mutex
	parallelBenchLites = map[int][]cluster.Lite{}
)

func litesForParallelBench(b *testing.B, n int) []cluster.Lite {
	b.Helper()
	parallelBenchMu.Lock()
	defer parallelBenchMu.Unlock()
	if lites, ok := parallelBenchLites[n]; ok {
		return lites
	}
	genCfg, coreCfg := benchConfig()
	genCfg.SessionsPerEpoch = n
	g, err := synth.New(genCfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := g.EpochSessions(10)
	lites := make([]cluster.Lite, len(batch))
	for i := range batch {
		lites[i] = cluster.Digest(&batch[i], coreCfg.Thresholds)
	}
	parallelBenchLites[n] = lites
	return lites
}

// BenchmarkAnalyzeEpochParallel is the committed scaling benchmark for the
// sharded epoch-analysis engine: one full AnalyzeEpoch (sharded table build,
// tree merge, per-metric critical detection fan-out) per iteration, with the
// worker count following GOMAXPROCS so `go test -cpu 1,2,4,8` sweeps the
// shard count. scripts/bench.sh's scaling mode records it as BENCH_sharded.
func BenchmarkAnalyzeEpochParallel(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			lites := litesForParallelBench(b, n)
			_, coreCfg := benchConfig()
			coreCfg.Workers = runtime.GOMAXPROCS(0)
			// One untimed epoch warms the shard-table pool so the committed
			// numbers measure the steady state (a long-running monitor reuses
			// pooled tables every epoch), not the first-epoch cold allocation
			// of W shard arrays.
			if _, err := core.AnalyzeEpoch(10, lites, coreCfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeEpoch(10, lites, coreCfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(coreCfg.Workers), "workers")
		})
	}
}

func BenchmarkHHHDetect(b *testing.B) {
	genCfg, coreCfg := benchConfig()
	g, err := synth.New(genCfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := g.EpochSessions(10)
	lites := make([]cluster.Lite, len(batch))
	for i := range batch {
		lites[i] = cluster.Digest(&batch[i], coreCfg.Thresholds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hhh.Detect(lites, metric.BufRatio, hhh.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionBinaryCodec(b *testing.B) {
	s := session.Session{
		ID: 42, Epoch: 17,
		Attrs:    attr.Vector{3, 1, 250, 0, 2, 1, 4},
		QoE:      metric.QoE{JoinTimeMS: 2300, BufRatio: 0.03, BitrateKbps: 1850, DurationS: 640},
		EventIDs: session.NoEvents,
	}
	var buf []byte
	var out session.Session
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = session.AppendBinary(buf[:0], &s)
		if _, err := session.DecodeBinary(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(session.BinarySize()))
}

func BenchmarkHeartbeatProtocol(b *testing.B) {
	msg := heartbeat.Message{
		Kind: heartbeat.KindProgress, SessionID: 99,
		PlayedS: 120, BufferingS: 3, WeightedKbpsSec: 150_000,
	}
	var buf []byte
	var out heartbeat.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = heartbeat.Append(buf[:0], &msg)
		if err != nil {
			b.Fatal(err)
		}
		if err := heartbeat.Decode(buf[4:], &out); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions (paper §6) ---------------------------------------------------

func BenchmarkExtension_CostBenefit(b *testing.B) {
	s := suiteForBench(b)
	b.ResetTimer()
	var advantage float64
	for i := 0; i < b.N; i++ {
		res, err := s.CostBenefit(io.Discard, metric.JoinFailure)
		if err != nil {
			b.Fatal(err)
		}
		// Advantage of cost-aware selection at a 5% budget.
		for j := range res.ByBenefitPerCost {
			if res.ByBenefitPerCost[j].Budget == 0.05 {
				advantage = res.ByBenefitPerCost[j].Alleviated - res.ByCoverage[j].Alleviated
			}
		}
	}
	b.ReportMetric(advantage, "bpc_advantage_at_5%_budget")
}

func BenchmarkExtension_OnlineDetector(b *testing.B) {
	genCfg, coreCfg := benchConfig()
	genCfg.Trace = epoch.Range{Start: 0, End: 24}
	genCfg.Events.Trace = genCfg.Trace
	g, err := synth.New(genCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var alerts int
	for i := 0; i < b.N; i++ {
		d, err := online.NewDetector(coreCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.ForEach(d.Add); err != nil {
			b.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			b.Fatal(err)
		}
		alerts = d.Alerts
	}
	b.ReportMetric(float64(alerts)/24, "alerts/epoch")
}

// --- Sliding-window engine (sub-epoch streaming detection) -------------------

// windowBenchSetup pre-fills a one-hour window at the target hourly volume
// and returns the engine plus a function yielding tick i's session digests
// (the hour's sessions split evenly across the 60 one-minute sub-buckets).
func windowBenchSetup(b *testing.B, sessionsPerHour int) (*window.Engine, func(i int) []cluster.Lite) {
	b.Helper()
	lites := litesForParallelBench(b, sessionsPerHour)
	cfg := window.DefaultConfig()
	per := len(lites) / cfg.TicksPerEpoch
	tickLites := func(i int) []cluster.Lite {
		lo := (i % cfg.TicksPerEpoch) * per
		return lites[lo : lo+per]
	}
	eng, err := window.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(0); err != nil {
		b.Fatal(err)
	}
	for tk := 0; tk < cfg.Ticks; tk++ {
		for _, l := range tickLites(tk) {
			if err := eng.Observe(l); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Advance(); err != nil {
			b.Fatal(err)
		}
	}
	return eng, tickLites
}

// BenchmarkWindowAdvance measures the incremental cost of sliding a full
// 60-minute window forward by one minute at 100k sessions/hour: digest the
// entering minute into its sub-bucket, merge it into the window total,
// unmerge the minute that expired. This is the O(delta) maintenance the
// streaming detector pays per tick; compare BenchmarkWindowRecompute, the
// O(window) rebuild a non-incremental per-minute evaluation would pay.
func BenchmarkWindowAdvance(b *testing.B) {
	const sessionsPerHour = 100_000
	eng, tickLites := windowBenchSetup(b, sessionsPerHour)
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range tickLites(i) {
			if err := eng.Observe(l); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Advance(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sessionsPerHour/60), "sessions/tick")
}

// BenchmarkWindowAdvanceDetect is one full streaming-detector tick: the
// incremental advance plus critical-cluster analysis of the window snapshot.
func BenchmarkWindowAdvanceDetect(b *testing.B) {
	const sessionsPerHour = 100_000
	eng, tickLites := windowBenchSetup(b, sessionsPerHour)
	defer eng.Close()
	_, coreCfg := benchConfig()
	coreCfg.Thresholds = coreCfg.Thresholds.ScaleMinSessions(sessionsPerHour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range tickLites(i) {
			if err := eng.Observe(l); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Advance(); err != nil {
			b.Fatal(err)
		}
		snap, err := eng.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.AnalyzeEpochTable(snap, coreCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowRecompute is the baseline the incremental engine replaces:
// rebuilding the full 60-minute count table from scratch, which a naive
// per-minute re-evaluation would do every tick.
func BenchmarkWindowRecompute(b *testing.B) {
	const sessionsPerHour = 100_000
	lites := litesForParallelBench(b, sessionsPerHour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := cluster.NewTable(0, lites, 0)
		if tbl.Len() == 0 {
			b.Fatal("empty table")
		}
		tbl.Release()
	}
}

// BenchmarkWindowRecomputeDetect is the full non-incremental per-minute
// evaluation: table rebuild plus critical-cluster analysis.
func BenchmarkWindowRecomputeDetect(b *testing.B) {
	const sessionsPerHour = 100_000
	lites := litesForParallelBench(b, sessionsPerHour)
	_, coreCfg := benchConfig()
	coreCfg.Thresholds = coreCfg.Thresholds.ScaleMinSessions(sessionsPerHour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeEpoch(0, lites, coreCfg); err != nil {
			b.Fatal(err)
		}
	}
}
