package repro

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/session"
	"repro/internal/trace"
)

// TestPipelineIntegration runs the complete flow a downstream user would:
// generate a study, export its trace, re-analyse the file, stream it through
// the online detector, and drill into a detected cluster — asserting the
// paths agree with each other.
func TestPipelineIntegration(t *testing.T) {
	st := study(t)

	// Export and re-analyse: file analysis must match in-memory analysis.
	var buf bytes.Buffer
	if err := st.WriteTrace(&buf, false); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(1500)
	fromFile, err := core.AnalyzeTrace(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := st.Result()
	if fromFile.Trace != direct.Trace {
		t.Fatalf("trace ranges differ: %+v vs %+v", fromFile.Trace, direct.Trace)
	}
	for i := range direct.Epochs {
		for _, m := range metric.All() {
			a := &direct.Epochs[i].Metrics[m]
			b := &fromFile.Epochs[i].Metrics[m]
			if a.GlobalProblems != b.GlobalProblems || len(a.Critical) != len(b.Critical) {
				t.Fatalf("epoch %d metric %v: file analysis diverges", i, m)
			}
		}
	}

	// Online detection over the same file reaches the same critical sets.
	r2, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	perEpoch := make(map[int32]map[Key]bool)
	det, err := online.NewDetector(cfg, func(a online.Alert) {
		if a.Kind == online.AlertResolved || a.Metric != metric.BufRatio {
			return
		}
		if perEpoch[int32(a.Epoch)] == nil {
			perEpoch[int32(a.Epoch)] = make(map[Key]bool)
		}
		perEpoch[int32(a.Epoch)][a.Key] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.ForEach(func(s *session.Session) error { return det.Add(s) }); err != nil {
		t.Fatal(err)
	}
	if err := det.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range direct.Epochs {
		er := &direct.Epochs[i]
		want := er.Metrics[metric.BufRatio].CriticalSet()
		got := perEpoch[int32(er.Epoch)]
		if len(want) != len(got) {
			t.Fatalf("epoch %d: online %d critical keys, offline %d", er.Epoch, len(got), len(want))
		}
	}

	// Drill into the top buffering cluster of some epoch where it is
	// critical.
	top := st.TopCritical(BufRatio, 1)
	if len(top) == 0 {
		t.Fatal("no critical clusters to drill")
	}
	key := top[0]
	var drilled bool
	for i := range direct.Epochs {
		er := &direct.Epochs[i]
		if !er.Metrics[BufRatio].CriticalSet()[key] {
			continue
		}
		batch := st.Suite().Gen.EpochSessions(er.Epoch)
		lites := make([]cluster.Lite, len(batch))
		for j := range batch {
			lites[j] = cluster.Digest(&batch[j], cfg.Thresholds)
		}
		tbl := cluster.NewTable(er.Epoch, lites, 0)
		view, err := cluster.BuildView(tbl, metric.BufRatio, cfg.Thresholds)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := diagnose.Drill(view, key, st.AttrSpace())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ratio < view.Threshold {
			t.Errorf("drilled cluster ratio %v below threshold %v", rep.Ratio, view.Threshold)
		}
		if rep.Summary() == "" || len(rep.Remedies) == 0 {
			t.Error("drill report incomplete")
		}
		drilled = true
		break
	}
	if !drilled {
		t.Fatal("never drilled the top critical cluster")
	}
}
