// Command vqaggregate runs the central aggregator of the distributed
// ingestion tier: vqcollect edge nodes (run with -aggregator) relay
// assembled sessions and loss counters to it over acknowledged heartbeat
// links; it merges each node's partial per-epoch count table, stamps every
// sealed epoch with a Coverage record (nodes reporting, duplicates,
// restarts, shed), and feeds the result to the online critical-cluster
// detector — degraded or starved epochs freeze alert streaks instead of
// resolving them on a biased sample.
//
// Epochs seal on a cadence: every -seal-every interval, all open epochs
// older than the newest -seal-lag epochs are sealed (newer ones are assumed
// to still be filling). SIGTERM drains connections, seals everything still
// open, and prints the coverage ledger:
//
//	vqaggregate -addr 127.0.0.1:9833 -expect-nodes 3 -sessions-per-epoch 4000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/online"
	"repro/internal/world"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("vqaggregate: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:9833", "TCP listen address for relay connections")
		expectNodes = flag.Int("expect-nodes", 0, "collector fleet size for coverage judgments (0 = unknown)")
		perEpoch    = flag.Int("sessions-per-epoch", 4000, "expected sessions per epoch (sizes the analysis)")
		minEpoch    = flag.Int("min-epoch-sessions", 0, "starvation gate: epochs below this freeze the detector")
		sealEvery   = flag.Duration("seal-every", 30*time.Second, "seal cadence for open epochs")
		sealLag     = flag.Int("seal-lag", 1, "keep this many newest open epochs unsealed (still filling)")
		grace       = flag.Duration("grace", 10*time.Second, "connection drain deadline at shutdown")
		workers     = flag.Int("workers", 0, "analysis shards per sealed epoch (0 = GOMAXPROCS)")
	)
	flag.Parse()

	// The default world's attribute space names cluster keys in alerts; the
	// analysis itself is space-agnostic.
	w, err := world.New(world.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	space := w.Space()

	cfg := core.DefaultConfig(*perEpoch)
	cfg.Workers = *workers
	agg, err := ingest.NewAggregator(ingest.AggregatorConfig{
		Analysis:         cfg,
		ExpectNodes:      *expectNodes,
		MinEpochSessions: *minEpoch,
		Logf:             log.Printf,
		OnSeal:           func(cov ingest.Coverage, res *core.EpochResult) { printSeal(cov, res) },
		Emit: func(a online.Alert) {
			if a.Kind == online.AlertResolved {
				fmt.Printf("alert epoch %3d  %-10s %-12s %s (lasted %dh)\n",
					a.Epoch, a.Kind, a.Metric, space.FormatKey(a.Key), a.StreakHours)
				return
			}
			tag := ""
			if a.Actionable() {
				tag = "  [ACT]"
			}
			fmt.Printf("alert epoch %3d  %-10s %-12s %s (ratio %.2f over %d sessions, streak %dh)%s\n",
				a.Epoch, a.Kind, a.Metric, space.FormatKey(a.Key), a.Ratio, a.Sessions, a.StreakHours, tag)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := agg.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregating relayed sessions on %s (expect %d nodes)\n", agg.Addr(), *expectNodes)

	stopSeal := make(chan struct{})
	sealDone := make(chan struct{})
	go func() {
		defer close(sealDone)
		ticker := time.NewTicker(*sealEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				sealSettled(agg, *sealLag)
			case <-stopSeal:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")

	exit := 0
	close(stopSeal)
	<-sealDone
	// Drain relay connections first so in-flight sessions land, then seal
	// whatever is still open — the final epochs get their coverage stamp
	// even when the fleet went away mid-epoch.
	if err := agg.CloseGrace(*grace); err != nil {
		log.Printf("closing: %v", err)
		exit = 1
	}
	if err := agg.SealAll(); err != nil {
		log.Printf("final seal: %v", err)
		exit = 1
	}

	covs := agg.Coverages()
	sessions, degraded := 0, 0
	for _, cov := range covs {
		sessions += cov.Sessions
		if cov.Degraded || cov.Starved {
			degraded++
		}
	}
	st := agg.Stats()
	det := agg.Detector()
	fmt.Printf("sealed %d epochs (%d degraded or starved), %d sessions merged, %d alerts (%d gap epochs frozen)\n",
		len(covs), degraded, sessions, det.Alerts, det.GapEpochs)
	if st.DupSessions > 0 || st.LateSessions > 0 || st.ProtocolErrors > 0 || st.HandlerPanics > 0 {
		fmt.Printf("ingest accounting: %d duplicates dropped, %d late sessions dropped, %d protocol errors, %d handler panics\n",
			st.DupSessions, st.LateSessions, st.ProtocolErrors, st.HandlerPanics)
	}
	if st.ForceClosed > 0 {
		log.Printf("drain timed out: %d relay connections force-closed after %v", st.ForceClosed, *grace)
		exit = 1
	}
	return exit
}

// sealSettled seals every open epoch except the lag newest — those are
// assumed to still be receiving sessions from the fleet.
func sealSettled(agg *ingest.Aggregator, lag int) {
	open := agg.OpenEpochs()
	if len(open) <= lag {
		return
	}
	cutoff := open[len(open)-1-lag]
	if err := agg.SealThrough(cutoff); err != nil {
		log.Printf("sealing through epoch %d: %v", cutoff, err)
	}
}

// printSeal logs one sealed epoch's coverage stamp and, when the epoch was
// healthy enough to analyse, its per-metric problem counts.
func printSeal(cov ingest.Coverage, res *core.EpochResult) {
	status := "healthy"
	switch {
	case cov.Starved:
		status = "STARVED (frozen)"
	case cov.Degraded:
		status = "DEGRADED (frozen)"
	}
	fmt.Printf("epoch %3d sealed: %d sessions from %d/%d nodes, %d dups, %d restarts, shed %d relay + %d spool — %s\n",
		cov.Epoch, cov.Sessions, cov.NodesReporting, cov.ExpectNodes,
		cov.Duplicates, cov.Restarts, cov.RelayShed, cov.SpoolShed, status)
	if res == nil {
		return
	}
	for _, ms := range res.Metrics {
		if ms.NumProblemClusters > 0 || len(ms.Critical) > 0 {
			fmt.Printf("  %-12s %d/%d problem sessions (ratio %.3f), %d problem clusters, %d critical\n",
				ms.Metric, ms.GlobalProblems, ms.GlobalSessions, ms.GlobalRatio,
				ms.NumProblemClusters, len(ms.Critical))
		}
	}
}
