// Command vqreport regenerates the paper's evaluation: every figure and
// table (Figs. 1–2, 7–13; Tables 1–5), the ablations (threshold
// sensitivity, hierarchical-heavy-hitter baseline, hidden attribute), and
// the ground-truth validation that the synthetic setting makes possible.
//
// Usage:
//
//	vqreport                      # everything, default two-week dataset
//	vqreport -fig 11              # a single figure
//	vqreport -table 4             # a single table
//	vqreport -ablations           # ablations + validation only
//	vqreport -epochs 72 -sessions 2000 -seed 3   # smaller/quicker dataset
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/experiments"
	"repro/internal/metric"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqreport: ")
	var (
		epochs    = flag.Int("epochs", epoch.DefaultTraceEpochs, "trace length in one-hour epochs")
		sessions  = flag.Int("sessions", 4000, "mean sessions per epoch")
		seed      = flag.Uint64("seed", 1, "universe seed")
		fig       = flag.Int("fig", 0, "render only this figure (1,2,7,8,9,10,11,12,13)")
		table     = flag.Int("table", 0, "render only this table (1..5)")
		ablations = flag.Bool("ablations", false, "render ablations and ground-truth validation only")
		outPath   = flag.String("out", "", "write to file instead of stdout")
	)
	flag.Parse()

	genCfg := synth.DefaultConfig()
	genCfg.Seed = *seed
	genCfg.Trace = epoch.Range{Start: 0, End: epoch.Index(*epochs)}
	genCfg.SessionsPerEpoch = *sessions
	genCfg.Events.Trace = genCfg.Trace

	start := time.Now()
	suite, err := experiments.NewSuite(genCfg, core.DefaultConfig(*sessions))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vqreport: generated and analysed %d epochs × ~%d sessions in %v\n",
		*epochs, *sessions, time.Since(start).Round(time.Millisecond))

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	run := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			log.Fatal(err)
		}
	}

	switch {
	case *fig > 0:
		switch *fig {
		case 1:
			_, err = suite.Fig1(w)
		case 2:
			_, err = suite.Fig2(w)
		case 7:
			_, err = suite.Fig7(w)
		case 8:
			_, _, err = suite.Fig8(w)
		case 9:
			_, _, err = suite.Fig9(w)
		case 10:
			_, err = suite.Fig10(w)
		case 11:
			_, err = suite.Fig11(w)
		case 12:
			_, err = suite.Fig12(w)
		case 13:
			_, err = suite.Fig13(w)
		default:
			log.Fatalf("no figure %d in the paper's evaluation (have 1,2,7-13)", *fig)
		}
		run(err)
	case *table > 0:
		switch *table {
		case 1:
			_, err = suite.Table1(w)
		case 2:
			_, err = suite.Table2(w)
		case 3:
			_, err = suite.Table3(w)
		case 4:
			_, err = suite.Table4(w)
		case 5:
			_, err = suite.Table5(w)
		default:
			log.Fatalf("no table %d (have 1-5)", *table)
		}
		run(err)
	case *ablations:
		renderAblations(w, suite)
	default:
		if err := suite.All(w); err != nil {
			log.Fatal(err)
		}
		renderAblations(w, suite)
	}
}

func renderAblations(w io.Writer, suite *experiments.Suite) {
	steps := []func() error{
		func() error { _, err := suite.Headlines(w); return err },
		func() error { _, err := suite.Validate(w); return err },
		func() error { _, err := suite.ThresholdSweep(w); return err },
		func() error { _, err := suite.CompareHHH(w); return err },
		func() error { _, err := suite.HideAttribute(w, attr.ConnType); return err },
		func() error { _, err := suite.CostBenefit(w, metric.JoinFailure); return err },
		func() error { _, err := suite.CriticalTemporalStats(w); return err },
		func() error { _, err := suite.WeeklyConsistency(w); return err },
		func() error { _, err := suite.Engagement(w); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			log.Fatal(err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			log.Fatal(err)
		}
	}
}
