// Command vqcollect runs the heartbeat collector — the measurement back end
// of the reproduction — accepting TCP heartbeat streams from video players
// and appending assembled sessions to a trace file.
//
// The pipeline is built to degrade by accounting rather than crash: sessions
// flow through a bounded spool (a stalled disk sheds load instead of
// backpressuring the accept plane), the trace is written with periodic fsync
// and atomic rotation (a crash loses at most a bounded tail, never the
// file), and shutdown drains connections against a deadline — a drain that
// times out force-closes stragglers and exits non-zero.
//
// With -demo N it also spawns N simulated adaptive-bitrate players (package
// player driving package cdn deliveries) against its own listener, so the
// whole measurement pipeline can be exercised on one machine:
//
//	vqcollect -addr 127.0.0.1:9823 -out collected.vqt -demo 500
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/attr"
	"repro/internal/cdn"
	"repro/internal/heartbeat"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("vqcollect: ")
	var (
		addr  = flag.String("addr", "127.0.0.1:9823", "TCP heartbeat listen address")
		httpA = flag.String("http", "", "also serve HTTP heartbeat batches on this address (e.g. 127.0.0.1:9824)")
		out   = flag.String("out", "collected.vqt", "trace file to append assembled sessions to")
		demo  = flag.Int("demo", 0, "also run this many simulated player sessions against the collector")
		seed  = flag.Uint64("seed", 1, "world seed for the demo players")
		flush = flag.Duration("flush", 30*time.Second, "idle-session flush and trace sync interval")
		grace = flag.Duration("grace", 10*time.Second, "connection drain deadline at shutdown")
		spool = flag.Int("spool", 1024, "bounded session buffer between assembler and trace writer")
	)
	flag.Parse()

	w, err := world.New(world.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	hdr := trace.HeaderFor(w.Space(), 1, *seed)
	hdr.Comment = "sessions assembled by vqcollect"
	// Atomic rotation: sessions stream into *out+".partial" and only a clean
	// Close publishes *out, so downstream readers never open a half-written
	// container. Periodic fsync bounds what a crash can lose.
	tw, err := trace.CreateAtomic(*out, hdr)
	if err != nil {
		log.Fatal(err)
	}
	tw.SyncEvery = 64

	// The spool decouples the accept plane from the disk: its single
	// delivery goroutine is the only session writer, and the mutex only
	// serializes it against the periodic sync below.
	var wmu sync.Mutex
	sp := heartbeat.NewSpool(*spool, func(s session.Session) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := tw.Write(&s); err != nil {
			log.Printf("writing session: %v", err)
		}
	})

	collector := heartbeat.NewCollector(sp.Emit)
	if err := collector.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collecting heartbeats on %s → %s\n", collector.Addr(), *out)

	var httpSrv *http.Server
	if *httpA != "" {
		httpSrv = &http.Server{
			Addr:    *httpA,
			Handler: &heartbeat.HTTPHandler{Asm: collector.Assembler(), Logf: log.Printf},
			// Slow-loris defense: a client that trickles its headers or body
			// is cut off instead of pinning a handler goroutine forever.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
		}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		fmt.Printf("accepting HTTP heartbeat batches on %s\n", *httpA)
	}

	stopFlush := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*flush)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := collector.Assembler().Flush(false); n > 0 {
					log.Printf("flushed %d idle sessions", n)
				}
				wmu.Lock()
				if err := tw.Sync(); err != nil {
					log.Printf("syncing trace: %v", err)
				}
				wmu.Unlock()
			case <-stopFlush:
				return
			}
		}
	}()

	if *demo > 0 {
		if err := runDemo(collector.Addr().String(), w, *seed, *demo); err != nil {
			log.Printf("demo: %v", err)
		}
		// Demo mode: drain and exit.
		time.Sleep(200 * time.Millisecond)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down")
	}

	exit := 0
	close(stopFlush)
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutting down http server: %v", err)
		}
		cancel()
	}
	// Drain heartbeat connections, force-flush pending sessions into the
	// spool, then drain the spool into the trace. Order matters: the spool
	// must outlive the collector's final flush.
	if err := collector.CloseGrace(*grace); err != nil {
		log.Printf("closing collector: %v", err)
		exit = 1
	}
	sp.Close()
	wmu.Lock()
	defer wmu.Unlock()
	if err := tw.Close(); err != nil {
		log.Printf("closing trace: %v", err)
		exit = 1
	}

	st := sp.Stats()
	cs := collector.Stats()
	fmt.Printf("wrote %d assembled sessions to %s\n", st.Delivered, *out)
	if st.Shed > 0 || cs.Salvaged > 0 || cs.ReplaysDropped > 0 || cs.HandlerPanics > 0 {
		fmt.Printf("loss accounting: %d shed at the spool, %d salvaged as join failures, %d replays deduplicated, %d handler panics\n",
			st.Shed, cs.Salvaged, cs.ReplaysDropped, cs.HandlerPanics)
	}
	if cs.ForceClosed > 0 {
		log.Printf("drain timed out: %d connections force-closed after %v", cs.ForceClosed, *grace)
		exit = 1
	}
	return exit
}

// runDemo simulates n player sessions end-to-end: world attributes → CDN
// delivery → ABR playback → heartbeats over TCP through the reconnecting
// Sender (the fault-tolerant client the chaos tests exercise).
func runDemo(addr string, w *world.World, seed uint64, n int) error {
	model, err := cdn.New(w, cdn.DefaultConfig())
	if err != nil {
		return err
	}
	snd := heartbeat.DialSender(addr, heartbeat.SenderConfig{Seed: seed})
	snd.Logf = log.Printf
	defer snd.Close()
	rng := stats.NewRNG(seed).Split(0xDE)
	abrs := []player.ABR{player.RateBased{}, player.BufferBased{}, player.Fixed{Index: 1}}
	for i := 0; i < n; i++ {
		attrs := w.SampleAttrs(rng)
		site := &w.Sites[attrs[attr.Site]]
		load := cdn.LoadCurve(20, 1.1)
		d := model.Deliver(rng, attrs[attr.CDN], attrs[attr.ASN], load, site.LowPriority)
		net := player.NewMarkovNetwork(rng.Split(uint64(i)), d.ThroughputKbps, 20)
		res, err := player.Play(rng, site.BitrateLadder, abrs[i%len(abrs)], net,
			player.DefaultConfig(), 120+float64(rng.Intn(480)), d.FailProb, d.RTTms/1000)
		if err != nil {
			return err
		}
		s := session.Session{ID: uint64(i + 1), Epoch: 0, Attrs: attrs, QoE: res.QoE, EventIDs: session.NoEvents}
		if err := snd.EmitSession(&s, 2); err != nil {
			return err
		}
	}
	return nil
}
