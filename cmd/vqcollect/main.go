// Command vqcollect runs the heartbeat collector — the measurement back end
// of the reproduction — accepting TCP heartbeat streams from video players
// and appending assembled sessions to a trace file.
//
// The pipeline is built to degrade by accounting rather than crash: sessions
// flow through a bounded spool (a stalled disk sheds load instead of
// backpressuring the accept plane), the trace is written with periodic fsync
// and atomic rotation (a crash loses at most a bounded tail, never the
// file), and shutdown drains connections against a deadline — a drain that
// times out force-closes stragglers and exits non-zero.
//
// With -aggregator set, vqcollect runs as one edge node of the distributed
// ingestion tier instead of writing a local trace: assembled sessions flow
// through a disk-backed relay spool and ship to a central vqaggregate over
// an acknowledged heartbeat link. The spool directory persists across
// restarts — a new incarnation recovers and re-sends whatever its
// predecessor left sealed on disk:
//
//	vqcollect -addr 127.0.0.1:9823 -node-id 1 -incarnation 2 \
//	    -aggregator 127.0.0.1:9833 -spool-dir /var/spool/vq-node1
//
// With -demo N it also spawns N simulated adaptive-bitrate players (package
// player driving package cdn deliveries) against its own listener, so the
// whole measurement pipeline can be exercised on one machine:
//
//	vqcollect -addr 127.0.0.1:9823 -out collected.vqt -demo 500
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/attr"
	"repro/internal/cdn"
	"repro/internal/heartbeat"
	"repro/internal/ingest"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("vqcollect: ")
	var (
		addr  = flag.String("addr", "127.0.0.1:9823", "TCP heartbeat listen address")
		httpA = flag.String("http", "", "also serve HTTP heartbeat batches on this address (e.g. 127.0.0.1:9824)")
		out   = flag.String("out", "collected.vqt", "trace file to append assembled sessions to")
		demo  = flag.Int("demo", 0, "also run this many simulated player sessions against the collector")
		seed  = flag.Uint64("seed", 1, "world seed for the demo players")
		flush = flag.Duration("flush", 30*time.Second, "idle-session flush and trace sync interval")
		grace = flag.Duration("grace", 10*time.Second, "connection drain deadline at shutdown")
		spool = flag.Int("spool", 1024, "bounded session buffer between assembler and trace writer")

		// Distributed-tier node mode (active when -aggregator is set).
		aggAddr     = flag.String("aggregator", "", "relay assembled sessions to this vqaggregate address instead of writing a trace")
		nodeID      = flag.Uint64("node-id", 1, "node identity on the aggregator (stable across restarts)")
		incarnation = flag.Uint64("incarnation", 0, "restart counter; bump by one each time this node restarts")
		spoolDir    = flag.String("spool-dir", "relay-spool", "directory for relay spool segments (reuse across restarts for recovery)")
		rotate      = flag.Int("rotate", 256, "seal and ship a relay segment after this many sessions")
		maxSegments = flag.Int("max-segments", 64, "sealed-segment backlog bound; overflow sheds the oldest segment")
	)
	flag.Parse()

	if *aggAddr != "" {
		return runNode(nodeCfg{
			addr:        *addr,
			aggregator:  *aggAddr,
			nodeID:      *nodeID,
			incarnation: *incarnation,
			spoolDir:    *spoolDir,
			spoolCap:    *spool,
			rotate:      *rotate,
			maxSegments: *maxSegments,
			grace:       *grace,
			demo:        *demo,
			seed:        *seed,
		})
	}

	w, err := world.New(world.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	hdr := trace.HeaderFor(w.Space(), 1, *seed)
	hdr.Comment = "sessions assembled by vqcollect"
	// Atomic rotation: sessions stream into *out+".partial" and only a clean
	// Close publishes *out, so downstream readers never open a half-written
	// container. Periodic fsync bounds what a crash can lose.
	tw, err := trace.CreateAtomic(*out, hdr)
	if err != nil {
		log.Fatal(err)
	}
	tw.SyncEvery = 64

	// The spool decouples the accept plane from the disk: its single
	// delivery goroutine is the only session writer, and the mutex only
	// serializes it against the periodic sync below.
	var wmu sync.Mutex
	sp := heartbeat.NewSpool(*spool, func(s session.Session) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := tw.Write(&s); err != nil {
			log.Printf("writing session: %v", err)
		}
	})

	collector := heartbeat.NewCollector(sp.Emit)
	if err := collector.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collecting heartbeats on %s → %s\n", collector.Addr(), *out)

	var httpSrv *http.Server
	if *httpA != "" {
		httpSrv = &http.Server{
			Addr:    *httpA,
			Handler: &heartbeat.HTTPHandler{Asm: collector.Assembler(), Logf: log.Printf},
			// Slow-loris defense: a client that trickles its headers or body
			// is cut off instead of pinning a handler goroutine forever.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
		}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		fmt.Printf("accepting HTTP heartbeat batches on %s\n", *httpA)
	}

	stopFlush := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*flush)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := collector.Assembler().Flush(false); n > 0 {
					log.Printf("flushed %d idle sessions", n)
				}
				wmu.Lock()
				if err := tw.Sync(); err != nil {
					log.Printf("syncing trace: %v", err)
				}
				wmu.Unlock()
			case <-stopFlush:
				return
			}
		}
	}()

	if *demo > 0 {
		if err := runDemo(collector.Addr().String(), w, *seed, *demo); err != nil {
			log.Printf("demo: %v", err)
		}
		// Demo mode: drain and exit.
		time.Sleep(200 * time.Millisecond)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down")
	}

	exit := 0
	close(stopFlush)
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutting down http server: %v", err)
		}
		cancel()
	}
	// Drain heartbeat connections, force-flush pending sessions into the
	// spool, then drain the spool into the trace. Order matters: the spool
	// must outlive the collector's final flush.
	if err := collector.CloseGrace(*grace); err != nil {
		log.Printf("closing collector: %v", err)
		exit = 1
	}
	sp.Close()
	wmu.Lock()
	defer wmu.Unlock()
	if err := tw.Close(); err != nil {
		log.Printf("closing trace: %v", err)
		exit = 1
	}

	st := sp.Stats()
	cs := collector.Stats()
	fmt.Printf("wrote %d assembled sessions to %s\n", st.Delivered, *out)
	if st.Shed > 0 || cs.Salvaged > 0 || cs.ReplaysDropped > 0 || cs.HandlerPanics > 0 {
		fmt.Printf("loss accounting: %d shed at the spool, %d salvaged as join failures, %d replays deduplicated, %d handler panics\n",
			st.Shed, cs.Salvaged, cs.ReplaysDropped, cs.HandlerPanics)
	}
	if cs.ForceClosed > 0 {
		log.Printf("drain timed out: %d connections force-closed after %v", cs.ForceClosed, *grace)
		exit = 1
	}
	return exit
}

// nodeCfg carries the distributed-tier flags into runNode.
type nodeCfg struct {
	addr        string
	aggregator  string
	nodeID      uint64
	incarnation uint64
	spoolDir    string
	spoolCap    int
	rotate      int
	maxSegments int
	grace       time.Duration
	demo        int
	seed        uint64
}

// runNode runs vqcollect as one edge node of the distributed ingestion
// tier: players connect to the local collector, assembled sessions spool to
// disk, and a relay ships them to the central aggregator over an
// acknowledged link. The SIGTERM drain summary accounts for every
// downstream hop separately, so an operator can see exactly where sessions
// were lost (and a zero-loss drain exits zero).
func runNode(cfg nodeCfg) int {
	if err := os.MkdirAll(cfg.spoolDir, 0o755); err != nil {
		log.Fatal(err)
	}
	nd, err := ingest.StartNode(ingest.NodeConfig{
		ID:            cfg.nodeID,
		Incarnation:   cfg.incarnation,
		SpoolDir:      cfg.spoolDir,
		Aggregator:    func() (net.Conn, error) { return net.Dial("tcp", cfg.aggregator) },
		ListenAddr:    cfg.addr,
		SpoolCapacity: cfg.spoolCap,
		RotateEvery:   cfg.rotate,
		MaxSegments:   cfg.maxSegments,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d (incarnation %d): collecting heartbeats on %s → %s (spool %s)\n",
		cfg.nodeID, cfg.incarnation, nd.Addr(), cfg.aggregator, cfg.spoolDir)
	if recovered := nd.Stats().Relay.Recovered; recovered > 0 {
		fmt.Printf("recovered %d sessions left on disk by a previous incarnation\n", recovered)
	}

	if cfg.demo > 0 {
		w, err := world.New(world.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if err := runDemo(nd.Addr().String(), w, cfg.seed, cfg.demo); err != nil {
			log.Printf("demo: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down")
	}

	exit := 0
	if err := nd.Close(cfg.grace); err != nil {
		log.Printf("closing node: %v", err)
		exit = 1
	}
	st := nd.Stats()
	fmt.Printf("drained node %d: %d sessions assembled, %d delivered to %s\n",
		cfg.nodeID, st.Collector.SessionsEmitted, st.Relay.Sent, cfg.aggregator)
	// Per-downstream-hop loss accounting: each hop's shed counter is
	// independent, and their sum is exactly the sessions this node lost.
	hops := []struct {
		name   string
		shed   int64
		detail string
	}{
		{"assembler→spool", st.Spool.Shed,
			fmt.Sprintf("%d buffered, %d delivered downstream", st.Spool.Accepted, st.Spool.Delivered)},
		{"spool→disk", st.Relay.Shed,
			fmt.Sprintf("%d offered, %d segments sealed, %d dropped to backlog bound, %d recovered",
				st.Relay.Offered, st.Relay.SegmentsSealed, st.Relay.SegmentsDropped, st.Relay.Recovered)},
		{"disk→aggregator", st.Relay.Abandoned,
			fmt.Sprintf("%d sent acked, %d reconnects, %d replays", st.Relay.Sent, st.Sender.Reconnects, st.Sender.Replays)},
	}
	var totalShed int64
	for _, h := range hops {
		fmt.Printf("  hop %-17s shed %d  (%s)\n", h.name, h.shed, h.detail)
		totalShed += h.shed
	}
	if totalShed > 0 {
		log.Printf("node shed %d sessions across the tier", totalShed)
		exit = 1
	}
	if st.Collector.Salvaged > 0 || st.Collector.ReplaysDropped > 0 || st.Collector.HandlerPanics > 0 {
		fmt.Printf("assembler accounting: %d salvaged as join failures, %d replays deduplicated, %d handler panics\n",
			st.Collector.Salvaged, st.Collector.ReplaysDropped, st.Collector.HandlerPanics)
	}
	if st.Collector.ForceClosed > 0 {
		log.Printf("drain timed out: %d connections force-closed after %v", st.Collector.ForceClosed, cfg.grace)
		exit = 1
	}
	return exit
}

// runDemo simulates n player sessions end-to-end: world attributes → CDN
// delivery → ABR playback → heartbeats over TCP through the reconnecting
// Sender (the fault-tolerant client the chaos tests exercise).
func runDemo(addr string, w *world.World, seed uint64, n int) error {
	model, err := cdn.New(w, cdn.DefaultConfig())
	if err != nil {
		return err
	}
	snd := heartbeat.DialSender(addr, heartbeat.SenderConfig{Seed: seed})
	snd.Logf = log.Printf
	defer snd.Close()
	rng := stats.NewRNG(seed).Split(0xDE)
	abrs := []player.ABR{player.RateBased{}, player.BufferBased{}, player.Fixed{Index: 1}}
	for i := 0; i < n; i++ {
		attrs := w.SampleAttrs(rng)
		site := &w.Sites[attrs[attr.Site]]
		load := cdn.LoadCurve(20, 1.1)
		d := model.Deliver(rng, attrs[attr.CDN], attrs[attr.ASN], load, site.LowPriority)
		net := player.NewMarkovNetwork(rng.Split(uint64(i)), d.ThroughputKbps, 20)
		res, err := player.Play(rng, site.BitrateLadder, abrs[i%len(abrs)], net,
			player.DefaultConfig(), 120+float64(rng.Intn(480)), d.FailProb, d.RTTms/1000)
		if err != nil {
			return err
		}
		s := session.Session{ID: uint64(i + 1), Epoch: 0, Attrs: attrs, QoE: res.QoE, EventIDs: session.NoEvents}
		if err := snd.EmitSession(&s, 2); err != nil {
			return err
		}
	}
	return nil
}
