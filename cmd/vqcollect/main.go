// Command vqcollect runs the heartbeat collector — the measurement back end
// of the reproduction — accepting TCP heartbeat streams from video players
// and appending assembled sessions to a trace file.
//
// With -demo N it also spawns N simulated adaptive-bitrate players (package
// player driving package cdn deliveries) against its own listener, so the
// whole measurement pipeline can be exercised on one machine:
//
//	vqcollect -addr 127.0.0.1:9823 -out collected.vqt -demo 500
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/attr"
	"repro/internal/cdn"
	"repro/internal/heartbeat"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqcollect: ")
	var (
		addr  = flag.String("addr", "127.0.0.1:9823", "TCP heartbeat listen address")
		httpA = flag.String("http", "", "also serve HTTP heartbeat batches on this address (e.g. 127.0.0.1:9824)")
		out   = flag.String("out", "collected.vqt", "trace file to append assembled sessions to")
		demo  = flag.Int("demo", 0, "also run this many simulated player sessions against the collector")
		seed  = flag.Uint64("seed", 1, "world seed for the demo players")
		flush = flag.Duration("flush", 30*time.Second, "idle-session flush interval")
	)
	flag.Parse()

	w, err := world.New(world.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	hdr := trace.HeaderFor(w.Space(), 1, *seed)
	hdr.Comment = "sessions assembled by vqcollect"
	tw, err := trace.NewWriter(f, hdr, false)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var count int
	collector := heartbeat.NewCollector(func(s session.Session) {
		mu.Lock()
		defer mu.Unlock()
		if err := tw.Write(&s); err != nil {
			log.Printf("writing session: %v", err)
			return
		}
		count++
	})
	if err := collector.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collecting heartbeats on %s → %s\n", collector.Addr(), *out)
	var httpSrv *http.Server
	if *httpA != "" {
		httpSrv = &http.Server{
			Addr:    *httpA,
			Handler: &heartbeat.HTTPHandler{Asm: collector.Assembler(), Logf: log.Printf},
		}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
		fmt.Printf("accepting HTTP heartbeat batches on %s\n", *httpA)
	}

	stopFlush := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*flush)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := collector.Assembler().Flush(false); n > 0 {
					log.Printf("flushed %d idle sessions", n)
				}
			case <-stopFlush:
				return
			}
		}
	}()

	if *demo > 0 {
		if err := runDemo(collector.Addr().String(), w, *seed, *demo); err != nil {
			log.Printf("demo: %v", err)
		}
		// Demo mode: drain and exit.
		time.Sleep(200 * time.Millisecond)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Println("\nshutting down")
	}

	close(stopFlush)
	if httpSrv != nil {
		if err := httpSrv.Close(); err != nil {
			log.Printf("closing http server: %v", err)
		}
	}
	if err := collector.Close(); err != nil {
		log.Printf("closing collector: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d assembled sessions to %s\n", count, *out)
}

// runDemo simulates n player sessions end-to-end: world attributes → CDN
// delivery → ABR playback → heartbeats over TCP.
func runDemo(addr string, w *world.World, seed uint64, n int) error {
	model, err := cdn.New(w, cdn.DefaultConfig())
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	em := &heartbeat.Emitter{W: heartbeat.NewWriter(conn), ProgressEvery: 2}
	rng := stats.NewRNG(seed).Split(0xDE)
	abrs := []player.ABR{player.RateBased{}, player.BufferBased{}, player.Fixed{Index: 1}}
	for i := 0; i < n; i++ {
		attrs := w.SampleAttrs(rng)
		site := &w.Sites[attrs[attr.Site]]
		load := cdn.LoadCurve(20, 1.1)
		d := model.Deliver(rng, attrs[attr.CDN], attrs[attr.ASN], load, site.LowPriority)
		net := player.NewMarkovNetwork(rng.Split(uint64(i)), d.ThroughputKbps, 20)
		res, err := player.Play(rng, site.BitrateLadder, abrs[i%len(abrs)], net,
			player.DefaultConfig(), 120+float64(rng.Intn(480)), d.FailProb, d.RTTms/1000)
		if err != nil {
			return err
		}
		s := session.Session{ID: uint64(i + 1), Epoch: 0, Attrs: attrs, QoE: res.QoE, EventIDs: session.NoEvents}
		if err := em.EmitSession(&s); err != nil {
			return err
		}
	}
	return nil
}
