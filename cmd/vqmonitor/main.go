// Command vqmonitor streams a trace (from a file or generated live) through
// the online critical-cluster detector and prints an alert log — the
// operational form of the paper's reactive strategy (§5.3): NEW when a
// problem event is first detected, CONTINUING (actionable) once it persists
// past the one-hour reaction threshold, RESOLVED when it clears.
//
// Usage:
//
//	vqmonitor -trace trace.vqt.gz                 # monitor a stored trace
//	vqmonitor -epochs 48 -sessions 3000 -seed 2   # monitor a live synthetic stream
//	vqmonitor ... -actionable                     # only persistence alerts
//	vqmonitor -window 60m -tick 1m ...            # sub-epoch streaming detection
//	vqmonitor -latency-report                     # canned detection-latency scenarios (JSON)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/online"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/window"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqmonitor: ")
	var (
		path       = flag.String("trace", "", "trace file to monitor (otherwise a synthetic stream is generated)")
		epochs     = flag.Int("epochs", 48, "synthetic stream length in epochs")
		sessions   = flag.Int("sessions", 3000, "synthetic sessions per epoch")
		seed       = flag.Uint64("seed", 1, "synthetic universe seed")
		actionable = flag.Bool("actionable", false, "print only actionable alerts (persisted ≥ 2 hours)")
		metricName = flag.String("metric", "", "restrict alerts to one metric")
		workers    = flag.Int("workers", 0, "analysis shards per epoch (0 = GOMAXPROCS)")
		pipeDepth  = flag.Int("pipeline-depth", 0, "overlap epoch analysis with ingestion, buffering this many completed epochs (0 = synchronous)")
		windowSpan = flag.Duration("window", 0, "sliding-window span for sub-epoch streaming detection (must equal the 1h epoch; 0 = epoch-boundary batch mode)")
		tickSpan   = flag.Duration("tick", time.Minute, "sub-bucket width for -window; the window clock advances on session order, never wall time")
		latReport  = flag.Bool("latency-report", false, "run the canned detection-latency scenarios and print JSON")
	)
	flag.Parse()

	if *latReport {
		if err := runLatencyReport(os.Stdout, 2500); err != nil {
			log.Fatal(err)
		}
		return
	}

	var wcfg window.Config
	streaming := *windowSpan > 0
	if streaming {
		var err error
		if wcfg, err = windowGeometry(*windowSpan, *tickSpan); err != nil {
			log.Fatal(err)
		}
		if *pipeDepth > 0 {
			log.Fatal("-pipeline-depth cannot combine with -window (the window engine is already incremental)")
		}
	}

	var space *attr.Space
	emit := func(a online.Alert) {
		if *actionable && !a.Actionable() {
			return
		}
		if *metricName != "" && a.Metric.String() != *metricName {
			return
		}
		name := a.Key.String()
		if space != nil {
			name = space.FormatKey(a.Key)
		}
		switch a.Kind {
		case online.AlertResolved:
			fmt.Printf("hour %3d  %-10s %-12s %s (lasted %dh)\n",
				a.Epoch, a.Kind, a.Metric, name, a.StreakHours)
		default:
			tag := ""
			if a.Actionable() {
				tag = "  [ACT]"
			}
			fmt.Printf("hour %3d  %-10s %-12s %s (ratio %.2f over %d sessions, streak %dh)%s\n",
				a.Epoch, a.Kind, a.Metric, name, a.Ratio, a.Sessions, a.StreakHours, tag)
		}
	}

	perEpoch := *sessions
	var feed func(d *online.Detector) error
	if *path != "" {
		r, err := trace.Open(*path)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		hdr := r.Header()
		if space, err = hdr.Space(); err != nil {
			log.Fatal(err)
		}
		perEpoch = 4000
		if streaming {
			// The codec streams sessions in epoch order; buffer one epoch at
			// a time and replay it bucket-sorted by derived sub-epoch tick.
			feed = func(d *online.Detector) error {
				var buf []session.Session
				cur := epoch.Index(-1)
				flush := func() error {
					if len(buf) == 0 {
						return nil
					}
					err := feedEpochTicks(d, cur, buf, wcfg)
					buf = buf[:0]
					return err
				}
				if err := r.ForEach(func(s *session.Session) error {
					if s.Epoch != cur {
						if err := flush(); err != nil {
							return err
						}
						cur = s.Epoch
					}
					buf = append(buf, *s)
					return nil
				}); err != nil {
					return err
				}
				return flush()
			}
		} else {
			feed = func(d *online.Detector) error {
				return r.ForEach(func(s *session.Session) error { return d.Add(s) })
			}
		}
	} else {
		cfg := synth.DefaultConfig()
		cfg.Seed = *seed
		cfg.Trace = epoch.Range{Start: 0, End: epoch.Index(*epochs)}
		cfg.SessionsPerEpoch = *sessions
		cfg.Events.Trace = cfg.Trace
		g, err := synth.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		space = g.World().Space()
		if streaming {
			feed = func(d *online.Detector) error {
				for e := cfg.Trace.Start; e < cfg.Trace.End; e++ {
					if err := feedEpochTicks(d, e, g.EpochSessions(e), wcfg); err != nil {
						return err
					}
				}
				return nil
			}
		} else {
			feed = func(d *online.Detector) error { return g.ForEach(d.Add) }
		}
	}

	cfg := core.DefaultConfig(perEpoch)
	cfg.Workers = *workers
	d, err := online.NewDetector(cfg, emit)
	if err != nil {
		log.Fatal(err)
	}
	if *pipeDepth > 0 {
		d.Pipeline(*pipeDepth)
	}
	if streaming {
		tickEmit := func(a online.TickAlert) {
			if *actionable {
				return // persistence is an epoch-level judgement
			}
			if *metricName != "" && a.Metric.String() != *metricName {
				return
			}
			name := a.Key.String()
			if space != nil {
				name = space.FormatKey(a.Key)
			}
			switch a.Kind {
			case online.AlertResolved:
				fmt.Printf("tick %5d  %-10s %-12s %s (lasted %d ticks)\n",
					a.Tick, a.Kind, a.Metric, name, a.StreakTicks)
			default:
				fmt.Printf("tick %5d  %-10s %-12s %s (ratio %.2f over %d sessions, streak %d ticks)\n",
					a.Tick, a.Kind, a.Metric, name, a.Ratio, a.Sessions, a.StreakTicks)
			}
		}
		if err := d.Streaming(online.StreamConfig{Window: wcfg, TickEmit: tickEmit}); err != nil {
			log.Fatal(err)
		}
	}
	if err := feed(d); err != nil {
		log.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vqmonitor: %d epochs, %d alerts\n", d.Epochs, d.Alerts)
	if streaming {
		fmt.Fprintf(os.Stderr, "vqmonitor: %d ticks, %d tick alerts\n", d.Ticks, d.TickAlerts)
	}
	if *pipeDepth > 0 {
		st := d.PipelineStats()
		fmt.Fprintf(os.Stderr, "vqmonitor: pipeline %d submit stalls (analysis-bound), %d input waits (ingest-bound)\n",
			st.SubmitStalls, st.InputWaits)
	}
}
