package main

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/window"
)

// windowGeometry converts the -window/-tick durations into a sub-bucket
// geometry. The tick must divide both the window span and the one-hour
// epoch; the streaming detector additionally requires the window to equal
// one epoch (the byte-identity contract), which Streaming itself enforces.
func windowGeometry(span, tick time.Duration) (window.Config, error) {
	if tick <= 0 {
		return window.Config{}, fmt.Errorf("-tick %v must be positive", tick)
	}
	if span%tick != 0 {
		return window.Config{}, fmt.Errorf("-tick %v does not divide -window %v", tick, span)
	}
	if epoch.Duration%tick != 0 {
		return window.Config{}, fmt.Errorf("-tick %v does not divide the %v epoch", tick, epoch.Duration)
	}
	return window.Config{
		Ticks:         int(span / tick),
		TicksPerEpoch: int(epoch.Duration / tick),
	}, nil
}

// feedEpochTicks delivers one epoch of sessions to a streaming detector in
// tick order: each session's sub-epoch tick is derived deterministically
// from its ID (window.SubTick — the heartbeat-timestamp stand-in), and the
// epoch is consumed bucket by bucket so the detector's window clock
// advances exactly as a live per-minute heartbeat stream would drive it.
func feedEpochTicks(d *online.Detector, e epoch.Index, batch []session.Session, wcfg window.Config) error {
	buckets := make([][]int, wcfg.TicksPerEpoch)
	for i := range batch {
		tk := window.SubTick(batch[i].ID, wcfg.TicksPerEpoch)
		buckets[tk] = append(buckets[tk], i)
	}
	start := wcfg.StartTick(e)
	for tk, idxs := range buckets {
		for _, i := range idxs {
			if err := d.AddAt(start+window.Tick(tk), &batch[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// latencyScenario is one canned ground-truth run of the -latency-report
// mode: a synthetic trace with a single injected event, measured under the
// default one-minute-tick streaming geometry.
type latencyScenario struct {
	name     string
	metric   metric.Metric
	anchor   attr.Key
	severity float64
	interval epoch.Range
	seed     uint64
}

// latencyRow is the JSON record one scenario produces.
type latencyRow struct {
	Scenario        string  `json:"scenario"`
	Metric          string  `json:"metric"`
	Severity        float64 `json:"severity"`
	StartEpoch      int64   `json:"event_start_epoch"`
	TicksPerEpoch   int     `json:"ticks_per_epoch"`
	DetectedTick    bool    `json:"detected_tick"`
	TickLatency     int     `json:"tick_latency_ticks"`
	DetectedEpoch   bool    `json:"detected_epoch"`
	EpochLatency    int     `json:"epoch_latency_ticks"`
	TicksSaved      int     `json:"ticks_saved"`
	SessionsPerHour int     `json:"sessions_per_hour"`
}

// latencyScenarios are the two internal/events ground-truth cases the
// committed BENCH_streaming.json records: a strong single-ASN buffering
// outage and a milder CDN join-time degradation.
func latencyScenarios() []latencyScenario {
	return []latencyScenario{
		{
			name:     "asn-bufratio-outage",
			metric:   metric.BufRatio,
			anchor:   attr.NewKey(map[attr.Dim]int32{attr.ASN: 0}),
			severity: 0.7,
			interval: epoch.Range{Start: 3, End: 6},
			seed:     1,
		},
		{
			name:     "cdn-jointime-degradation",
			metric:   metric.JoinTime,
			anchor:   attr.NewKey(map[attr.Dim]int32{attr.CDN: 1}),
			severity: 0.55,
			interval: epoch.Range{Start: 4, End: 7},
			seed:     7,
		},
	}
}

// runLatencyReport measures, for each canned scenario, how many one-minute
// ticks of session data the streaming detector needs past the event start
// versus the batch detector's epoch-boundary floor, and writes the rows as
// JSON.
func runLatencyReport(w io.Writer, perEpoch int) error {
	wcfg := window.DefaultConfig()
	rows := make([]latencyRow, 0, 2)
	for _, sc := range latencyScenarios() {
		cfg := synth.DefaultConfig()
		cfg.Seed = sc.seed
		cfg.Trace = epoch.Range{Start: 0, End: 8}
		cfg.SessionsPerEpoch = perEpoch
		cfg.Events.Trace = cfg.Trace
		cfg.Events.DisableChronic = true
		cfg.Events.DisableEpisodic = true
		cfg.Events.Extra = []events.Event{{
			Metric: sc.metric, Anchor: sc.anchor, Severity: sc.severity,
			Intervals: []epoch.Range{sc.interval}, Tag: sc.name,
		}}
		g, err := synth.New(cfg)
		if err != nil {
			return err
		}
		ev := &g.Schedule().Events[0]

		var ticks []online.TickAlert
		var epochs []online.Alert
		d, err := online.NewDetector(core.DefaultConfig(perEpoch), func(a online.Alert) { epochs = append(epochs, a) })
		if err != nil {
			return err
		}
		if err := d.Streaming(online.StreamConfig{
			Window:   wcfg,
			TickEmit: func(a online.TickAlert) { ticks = append(ticks, a) },
		}); err != nil {
			return err
		}
		for e := cfg.Trace.Start; e < cfg.Trace.End; e++ {
			if err := feedEpochTicks(d, e, g.EpochSessions(e), wcfg); err != nil {
				return err
			}
		}
		if err := d.Flush(); err != nil {
			return err
		}

		for _, el := range online.MeasureLatency(g.Schedule(), ticks, epochs, wcfg) {
			if el.EventID != ev.ID {
				continue
			}
			rows = append(rows, latencyRow{
				Scenario:        sc.name,
				Metric:          sc.metric.String(),
				Severity:        sc.severity,
				StartEpoch:      int64(el.StartEpoch),
				TicksPerEpoch:   wcfg.TicksPerEpoch,
				DetectedTick:    el.DetectedTick,
				TickLatency:     el.TickLatency,
				DetectedEpoch:   el.DetectedEpoch,
				EpochLatency:    el.EpochLatencyTicks,
				TicksSaved:      el.EpochLatencyTicks - el.TickLatency,
				SessionsPerHour: perEpoch,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
