package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/lint"
)

// finding is the serialized form of one diagnostic. File is relative to the
// invocation directory so the baseline and the SARIF log are stable across
// checkouts.
type finding struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Msg, f.Rule)
}

// key identifies a finding for baseline matching: rule, file, and message.
// Line and column are deliberately excluded so edits elsewhere in a file do
// not resurrect a grandfathered finding.
func (f finding) key() string {
	return f.Rule + "\x00" + f.File + "\x00" + f.Msg
}

func toFindings(diags []lint.Diagnostic, cwd string) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
			file = filepath.ToSlash(rel)
		}
		out = append(out, finding{Rule: d.Rule, File: file, Line: d.Pos.Line, Col: d.Pos.Column, Msg: d.Msg})
	}
	return out
}

// baselineDoc is the on-disk baseline shape. An empty baseline is the
// committed steady state: {"findings":[]}.
type baselineDoc struct {
	Findings []finding `json:"findings"`
}

func loadBaseline(path string) ([]finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var doc baselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return doc.Findings, nil
}

func saveBaseline(path string, findings []finding) error {
	// The committed baseline must be byte-stable across machines and worker
	// counts: repo-relative slash paths (toFindings) plus a full sort.
	findings = append(make([]finding, 0, len(findings)), findings...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
	data, err := json.MarshalIndent(baselineDoc{Findings: findings}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// timingDoc is the -timing report: per-package analysis wall time (with a
// per-rule breakdown each) in the deterministic package order of
// RunConcurrent, plus the per-analyzer totals across all packages — the
// number that answers "which rule is making CI slow".
type timingDoc struct {
	Packages []lint.PkgTiming         `json:"packages"`
	RuleNs   map[string]time.Duration `json:"ruleNs"`
}

func saveTimings(path string, timings []lint.PkgTiming) error {
	if timings == nil {
		timings = []lint.PkgTiming{}
	}
	totals := make(map[string]time.Duration)
	for _, pt := range timings {
		for rule, d := range pt.Rules {
			totals[rule] += d
		}
	}
	data, err := json.MarshalIndent(timingDoc{Packages: timings, RuleNs: totals}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// applyBaseline removes findings matched by the baseline. Each baseline
// entry absorbs at most as many findings as it occurs — a second identical
// finding in the same file is new and stays reported.
func applyBaseline(findings, base []finding) []finding {
	budget := make(map[string]int, len(base))
	for _, b := range base {
		budget[b.key()]++
	}
	kept := findings[:0:0]
	for _, f := range findings {
		if budget[f.key()] > 0 {
			budget[f.key()]--
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func writeJSON(w io.Writer, findings []finding) error {
	if findings == nil {
		findings = []finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(baselineDoc{Findings: findings})
}

// SARIF 2.1.0, the minimal subset code-scanning backends accept: one run,
// the driver's rule metadata, and one result per finding with a single
// physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, findings []finding, analyzers []*lint.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "vqlint", Rules: rules}}, Results: results}},
	})
}
