// Command vqlint runs the repo's static-analysis rules (internal/lint) over
// the given package patterns and exits non-zero on findings, so it can gate
// CI alongside go vet and the race detector.
//
// Usage:
//
//	vqlint [-rules floatcmp,lockbalance,...] [-list]
//	       [-format text|json|sarif] [-baseline lint-baseline.json]
//	       [-write-baseline lint-baseline.json] [-j N]
//	       [-timing lint-timing.json]
//	       [-cache DIR] [-assert-all-cached] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape. Findings print
// one per line as file:line:col: message [rule] (text), as a {"findings":
// [...]} document (json), or as a SARIF 2.1.0 log (sarif, for code-scanning
// upload). Suppress a finding with a trailing or preceding comment
// //vqlint:ignore <rule> <rationale>, or a //vqlint:ignore-start/-end block.
//
// Packages are analyzed concurrently (-j bounds the workers, default one per
// CPU); loading stays serial because the source importer is not, and output
// order is deterministic regardless of worker count. -timing writes a JSON
// report of analysis wall time — per package, and per analyzer both within
// each package and totaled across the run — for CI artifact upload.
//
// -cache DIR makes runs incremental: each package's findings are stored
// under a content key hashing its source files, its in-module dependency
// closure, the enabled rule set, and the toolchain version. A warm run
// replays findings for unchanged packages without type-checking them (the
// -timing report marks those packages "cached": true), and
// -assert-all-cached turns any miss into a failure so CI can prove the warm
// path really skipped everything.
//
// The baseline mechanism grandfathers pre-existing findings during a rule
// rollout: -write-baseline records the current findings, -baseline filters
// any finding matching a recorded one (same rule, file, and message —
// line and column are ignored so unrelated edits don't resurrect them).
// The committed lint-baseline.json is empty and CI asserts it stays that
// way: new findings must be fixed or suppressed with a rationale, never
// baselined away silently.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("vqlint", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "", "filter findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	workers := fs.Int("j", runtime.NumCPU(), "number of packages analyzed concurrently")
	timingPath := fs.String("timing", "", "write per-package and per-analyzer timings (JSON) to this file")
	cacheDir := fs.String("cache", "", "replay findings for unchanged packages from this directory (content-hash keyed)")
	assertAllCached := fs.Bool("assert-all-cached", false, "with -cache, fail if any selected package is not already cached")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc) //vqlint:ignore errdrop terminal output; the exit code is the result
		}
		return 0
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "vqlint: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	analyzers := lint.All()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "vqlint: unknown rule %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
		return 2
	}
	var findings []finding
	var timings []lint.PkgTiming
	if *cacheDir != "" {
		findings, timings, err = runCached(*cacheDir, cwd, patterns, analyzers, *workers, *assertAllCached)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			return 2
		}
	} else {
		pkgs, err := lint.Load(cwd, patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			return 2
		}
		var diags []lint.Diagnostic
		diags, timings = lint.RunConcurrent(pkgs, analyzers, *workers)
		findings = toFindings(diags, cwd)
	}
	if *timingPath != "" {
		if err := saveTimings(*timingPath, timings); err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			return 2
		}
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "vqlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
			return 2
		}
		findings = applyBaseline(findings, base)
	}

	switch *format {
	case "json":
		err = writeJSON(stdout, findings)
	case "sarif":
		err = writeSARIF(stdout, findings, analyzers)
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f) //vqlint:ignore errdrop terminal output; the exit code is the result
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vqlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
