// Command vqlint runs the repo's static-analysis rules (internal/lint) over
// the given package patterns and exits non-zero on findings, so it can gate
// CI alongside go vet and the race detector.
//
// Usage:
//
//	vqlint [-rules floatcmp,maporder,...] [-list] [patterns...]
//
// Patterns default to ./... and follow the go tool's shape. Findings print
// one per line as file:line:col: message [rule]. Suppress a finding with a
// trailing or preceding comment: //vqlint:ignore <rule> <rationale>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vqlint", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "vqlint: unknown rule %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vqlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
