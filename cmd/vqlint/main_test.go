package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lint"
)

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{Rule: "ratioguard", Pos: token.Position{Filename: "/work/internal/metric/counts.go", Line: 12, Column: 9}, Msg: "division by n is not dominated by a non-zero guard on every path"},
		{Rule: "lockbalance", Pos: token.Position{Filename: "/work/internal/collector/collector.go", Line: 40, Column: 2}, Msg: "mu reaches this return still locked"},
	}
}

func TestToFindingsRelativizes(t *testing.T) {
	fs := toFindings(sampleDiags(), "/work")
	if got, want := fs[0].File, "internal/metric/counts.go"; got != want {
		t.Errorf("File = %q, want %q", got, want)
	}
	if got, want := fs[0].String(), "internal/metric/counts.go:12:9: division by n is not dominated by a non-zero guard on every path [ratioguard]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// A file outside cwd stays as-is rather than sprouting ../ chains that
	// differ between checkouts.
	out := toFindings([]lint.Diagnostic{{Rule: "x", Pos: token.Position{Filename: "/elsewhere/a.go"}}}, "/work")
	if !strings.Contains(out[0].File, "..") && out[0].File != "/elsewhere/a.go" {
		t.Errorf("out-of-tree file mangled: %q", out[0].File)
	}
}

func TestBaselineRoundTripAndMatching(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	fs := toFindings(sampleDiags(), "/work")
	if err := saveBaseline(path, fs); err != nil {
		t.Fatalf("saveBaseline: %v", err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	if len(base) != 2 {
		t.Fatalf("round-tripped %d findings, want 2", len(base))
	}

	// The same findings at different lines are still matched (line and
	// column are ignored) …
	moved := make([]finding, len(fs))
	copy(moved, fs)
	moved[0].Line, moved[1].Line = 99, 77
	if kept := applyBaseline(moved, base); len(kept) != 0 {
		t.Errorf("baseline missed moved findings: %v", kept)
	}
	// … but a message or file change makes the finding new.
	changed := make([]finding, len(fs))
	copy(changed, fs)
	changed[0].Msg = "division by m is not dominated by a non-zero guard on every path"
	if kept := applyBaseline(changed, base); len(kept) != 1 || kept[0].Rule != "ratioguard" {
		t.Errorf("changed finding not kept: %v", kept)
	}
	// A second identical finding exceeds the baseline's budget for that key
	// and must surface.
	dup := append(append([]finding{}, fs...), fs[0])
	if kept := applyBaseline(dup, base); len(kept) != 1 {
		t.Errorf("duplicate beyond the baseline budget not kept: %v", kept)
	}
}

func TestSaveBaselineEmptyShape(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	if err := saveBaseline(path, nil); err != nil {
		t.Fatalf("saveBaseline: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []finding `json:"findings"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("empty baseline is not valid JSON: %v", err)
	}
	if doc.Findings == nil || len(doc.Findings) != 0 {
		t.Errorf("empty baseline must serialize findings as [], got %s", data)
	}
}

// TestSaveBaselineDeterministic pins the committed-artifact contract: the
// same findings in any order serialize to identical bytes.
func TestSaveBaselineDeterministic(t *testing.T) {
	dir := t.TempDir()
	fs := toFindings(sampleDiags(), "/work")
	rev := []finding{fs[1], fs[0]}

	pathA, pathB := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := saveBaseline(pathA, fs); err != nil {
		t.Fatal(err)
	}
	if err := saveBaseline(pathB, rev); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(pathA)
	b, _ := os.ReadFile(pathB)
	if !bytes.Equal(a, b) {
		t.Errorf("baseline bytes depend on input order:\n%s\nvs\n%s", a, b)
	}
	base, err := loadBaseline(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 || base[0].File > base[1].File {
		t.Errorf("baseline not sorted by file: %+v", base)
	}
}

func TestSaveTimings(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "timing.json")
	if err := saveTimings(path, []lint.PkgTiming{
		{Path: "repro/internal/lint", Elapsed: 1234, Rules: map[string]time.Duration{"goleak": 1000, "(setup)": 234}},
		{Path: "repro/internal/collector", Elapsed: 567, Rules: map[string]time.Duration{"goleak": 500, "(setup)": 67}},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Packages []struct {
			Path      string           `json:"path"`
			ElapsedNs int64            `json:"elapsedNs"`
			RuleNs    map[string]int64 `json:"ruleNs"`
		} `json:"packages"`
		RuleNs map[string]int64 `json:"ruleNs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid timing JSON: %v\n%s", err, data)
	}
	if len(doc.Packages) != 2 || doc.Packages[0].ElapsedNs != 1234 {
		t.Errorf("unexpected timing document: %s", data)
	}
	if doc.Packages[0].RuleNs["goleak"] != 1000 {
		t.Errorf("per-package rule timing lost: %s", data)
	}
	// The cross-package per-analyzer totals are the headline numbers.
	if doc.RuleNs["goleak"] != 1500 || doc.RuleNs["(setup)"] != 301 {
		t.Errorf("per-rule totals wrong: %s", data)
	}
	// The empty report still has the {"packages":[]} shape.
	if err := saveTimings(path, nil); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if !strings.Contains(string(data), `"packages": []`) {
		t.Errorf("empty timing report must serialize packages as []: %s", data)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, toFindings(sampleDiags(), "/work")); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []finding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Findings) != 2 || doc.Findings[1].Rule != "lockbalance" {
		t.Errorf("unexpected document: %s", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, toFindings(sampleDiags(), "/work"), lint.All()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: %s", buf.String())
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "vqlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"lockbalance", "poolrelease", "errflow", "ratioguard", "goleak", "chandiscipline", "wgbalance"} {
		if !ruleIDs[want] {
			t.Errorf("rule %s missing from driver metadata", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "ratioguard" || r0.Level != "error" {
		t.Errorf("result 0 = %+v", r0)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/metric/counts.go" || loc.Region.StartLine != 12 {
		t.Errorf("result 0 location = %+v", loc)
	}
}

// TestRunListAndBadFlags covers the CLI surface that needs no repository
// load.
func TestRunListAndBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-list"}, &buf); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, want := range []string{"lockbalance", "poolrelease", "errflow", "ratioguard", "floatcmp", "goleak", "chandiscipline", "wgbalance"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-list output missing %s", want)
		}
	}
	if code := run([]string{"-format", "yaml"}, &buf); code != 2 {
		t.Errorf("bad -format exit = %d, want 2", code)
	}
	if code := run([]string{"-rules", "nosuchrule"}, &buf); code != 2 {
		t.Errorf("bad -rules exit = %d, want 2", code)
	}
}

// TestRunCacheIncremental drives the full -cache flow against a throwaway
// module: a cold run populates the cache and reports the finding, a warm run
// replays it byte-identically with every package marked cached (and passes
// -assert-all-cached), an edit fails the assertion and re-analyzes only the
// edited package.
func TestRunCacheIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full analysis runs")
	}
	dir := t.TempDir()
	for name, src := range map[string]string{
		"go.mod":     "module tmpmod\n\ngo 1.22\n",
		"bad/bad.go": "package bad\n\nfunc Eq(x, y float64) bool { return x == y }\n",
		"ok/ok.go":   "package ok\n\nfunc Three() int { return 3 }\n",
	} {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	cache := filepath.Join(dir, ".vqcache")
	timing := filepath.Join(dir, "timing.json")

	cachedFlags := func(doc []byte) (cached, fresh int) {
		var td struct {
			Packages []lint.PkgTiming `json:"packages"`
		}
		if err := json.Unmarshal(doc, &td); err != nil {
			t.Fatalf("parsing timing doc: %v", err)
		}
		for _, p := range td.Packages {
			if p.Cached {
				cached++
			} else {
				fresh++
			}
		}
		return cached, fresh
	}

	var cold bytes.Buffer
	if code := run([]string{"-cache", cache, "-timing", timing, "./..."}, &cold); code != 1 {
		t.Fatalf("cold run exit = %d, want 1 (the floatcmp finding)", code)
	}
	doc, err := os.ReadFile(timing)
	if err != nil {
		t.Fatal(err)
	}
	if cached, fresh := cachedFlags(doc); cached != 0 || fresh != 2 {
		t.Errorf("cold run: %d cached / %d fresh, want 0/2", cached, fresh)
	}

	var warm bytes.Buffer
	if code := run([]string{"-cache", cache, "-assert-all-cached", "-timing", timing, "./..."}, &warm); code != 1 {
		t.Fatalf("warm run exit = %d, want 1 (replayed finding)", code)
	}
	if warm.String() != cold.String() {
		t.Errorf("warm output differs from cold:\ncold: %q\nwarm: %q", cold.String(), warm.String())
	}
	doc, err = os.ReadFile(timing)
	if err != nil {
		t.Fatal(err)
	}
	if cached, fresh := cachedFlags(doc); cached != 2 || fresh != 0 {
		t.Errorf("warm run: %d cached / %d fresh, want 2/0", cached, fresh)
	}

	okFile := filepath.Join(dir, "ok", "ok.go")
	if err := os.WriteFile(okFile, []byte("package ok\n\nfunc Three() int { return 1 + 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"-cache", cache, "-assert-all-cached", "./..."}, &buf); code != 2 {
		t.Errorf("-assert-all-cached after edit exit = %d, want 2", code)
	}
	buf.Reset()
	if code := run([]string{"-cache", cache, "-timing", timing, "./..."}, &buf); code != 1 {
		t.Fatalf("partial run exit = %d, want 1", code)
	}
	if buf.String() != cold.String() {
		t.Errorf("partial output differs from cold:\ncold: %q\ngot: %q", cold.String(), buf.String())
	}
	doc, err = os.ReadFile(timing)
	if err != nil {
		t.Fatal(err)
	}
	if cached, fresh := cachedFlags(doc); cached != 1 || fresh != 1 {
		t.Errorf("partial run: %d cached / %d fresh, want 1/1", cached, fresh)
	}
}
