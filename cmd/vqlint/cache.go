package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint"
)

// cacheDoc is one cache file: the findings a single package produced under a
// given content key. The key (the file name) already folds in the package
// source, its in-module dependency closure, the rule set, and the toolchain,
// so replaying Findings is exact — not heuristic. Path is stored for
// debuggability and verified on read so a hash collision or a stale rename
// cannot replay another package's findings.
type cacheDoc struct {
	Path     string    `json:"path"`
	Findings []finding `json:"findings"`
}

// runCached implements -cache: plan the content key of every selected
// package, replay the findings of the ones whose key file exists, and
// analyze only the misses, persisting their findings for the next run.
// Timings come back in planned package order with Cached set on every hit,
// so CI can assert a warm run re-analyzed nothing.
func runCached(cacheDir, cwd string, patterns []string, analyzers []*lint.Analyzer, workers int, assertAllCached bool) ([]finding, []lint.PkgTiming, error) {
	salt := ruleSalt(analyzers)
	entries, err := lint.PlanCache(cwd, patterns, salt)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("creating cache dir: %w", err)
	}

	byPath := make(map[string][]finding, len(entries))
	var misses []lint.CacheEntry
	for _, e := range entries {
		doc, ok := readCacheDoc(filepath.Join(cacheDir, e.Key+".json"), e.Path)
		if ok {
			byPath[e.Path] = doc.Findings
		} else {
			misses = append(misses, e)
		}
	}
	if assertAllCached && len(misses) > 0 {
		paths := make([]string, 0, len(misses))
		for _, m := range misses {
			paths = append(paths, m.Path)
		}
		return nil, nil, fmt.Errorf("-assert-all-cached: %d package(s) not cached: %v", len(misses), paths)
	}

	freshTimings := make(map[string]lint.PkgTiming, len(misses))
	if len(misses) > 0 {
		missPatterns := make([]string, 0, len(misses))
		for _, m := range misses {
			rel, err := filepath.Rel(cwd, m.Dir)
			if err != nil {
				return nil, nil, err
			}
			missPatterns = append(missPatterns, "./"+filepath.ToSlash(rel))
		}
		pkgs, err := lint.Load(cwd, missPatterns)
		if err != nil {
			return nil, nil, err
		}
		diags, timings := lint.RunConcurrent(pkgs, analyzers, workers)
		for _, t := range timings {
			freshTimings[t.Path] = t
		}
		// Partition the diagnostics back to their packages by directory:
		// every analyzer reports at positions inside the package's own
		// files, and loadDir parses them under the planned Dir.
		dirToPath := make(map[string]string, len(misses))
		for _, m := range misses {
			dirToPath[m.Dir] = m.Path
		}
		for _, d := range diags {
			path, ok := dirToPath[filepath.Dir(d.Pos.Filename)]
			if !ok {
				return nil, nil, fmt.Errorf("cache: diagnostic at %s matches no planned package", d.Pos.Filename)
			}
			byPath[path] = append(byPath[path], toFindings([]lint.Diagnostic{d}, cwd)...)
		}
		for _, m := range misses {
			doc := cacheDoc{Path: m.Path, Findings: byPath[m.Path]}
			if doc.Findings == nil {
				doc.Findings = []finding{}
			}
			data, err := json.Marshal(doc)
			if err != nil {
				return nil, nil, err
			}
			if err := os.WriteFile(filepath.Join(cacheDir, m.Key+".json"), append(data, '\n'), 0o644); err != nil {
				return nil, nil, fmt.Errorf("writing cache entry: %w", err)
			}
		}
	}

	var findings []finding
	timings := make([]lint.PkgTiming, 0, len(entries))
	for _, e := range entries {
		findings = append(findings, byPath[e.Path]...)
		if t, ok := freshTimings[e.Path]; ok {
			timings = append(timings, t)
		} else {
			timings = append(timings, lint.PkgTiming{Path: e.Path, Cached: true})
		}
	}
	sortFindings(findings)
	return findings, timings, nil
}

// readCacheDoc loads one cache file and validates it against the expected
// import path. Any read, parse, or path mismatch is a miss, never an error —
// the package is simply re-analyzed and the entry rewritten.
func readCacheDoc(path, wantPath string) (cacheDoc, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return cacheDoc{}, false
	}
	var doc cacheDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Path != wantPath {
		return cacheDoc{}, false
	}
	if doc.Findings == nil {
		doc.Findings = []finding{}
	}
	return doc, true
}

// ruleSalt folds the enabled rule set into every cache key, so toggling
// -rules can never replay findings computed under a different configuration.
func ruleSalt(analyzers []*lint.Analyzer) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	salt := "rules="
	for i, n := range names {
		if i > 0 {
			salt += ","
		}
		salt += n
	}
	return salt
}

// sortFindings orders merged cached-and-fresh findings the same way the
// baseline writer does, so output is identical whether the cache was warm,
// cold, or partial.
func sortFindings(findings []finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}
