// Command vqgen generates a synthetic video-session trace — the stand-in
// for the paper's proprietary dataset — and writes it as a trace container
// (or CSV) for later analysis with vqanalyze.
//
// Usage:
//
//	vqgen -out trace.vqt.gz [-epochs 336] [-sessions 4000] [-seed 1]
//	vqgen -out trace.csv -csv ...        # CSV interchange
//	vqgen -out trace.jsonl -jsonl ...    # JSON-lines interchange
//	vqgen -out trace.vqt -index ...      # plus epoch index for random access
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/epoch"
	"repro/internal/prof"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqgen: ")
	var (
		out      = flag.String("out", "trace.vqt.gz", "output path (.gz compresses; with -csv, CSV text)")
		epochs   = flag.Int("epochs", epoch.DefaultTraceEpochs, "number of one-hour epochs (paper: 336 = two weeks)")
		sessions = flag.Int("sessions", 4000, "mean sessions per epoch")
		seed     = flag.Uint64("seed", 1, "universe seed (identical seeds reproduce identical traces)")
		asCSV    = flag.Bool("csv", false, "write CSV instead of the binary container")
		asJSONL  = flag.Bool("jsonl", false, "write JSON lines instead of the binary container")
		index    = flag.Bool("index", false, "also write an epoch index (<out>.idx) for random access; uncompressed binary traces only")
		quiet    = flag.Bool("q", false, "suppress progress output")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopCPU, err := prof.StartCPU(*cpuprof)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memprof); err != nil {
			log.Print(err)
		}
	}()

	cfg := synth.DefaultConfig()
	cfg.Seed = *seed
	cfg.Trace = epoch.Range{Start: 0, End: epoch.Index(*epochs)}
	cfg.SessionsPerEpoch = *sessions
	cfg.Events.Trace = cfg.Trace

	g, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var count uint64
	if *asCSV || *asJSONL {
		var all []session.Session
		if err := g.ForEach(func(s *session.Session) error {
			all = append(all, *s)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		write := session.WriteCSV
		if *asJSONL {
			write = session.WriteJSONL
		}
		if err := write(f, all); err != nil {
			log.Fatal(err)
		}
		count = uint64(len(all))
	} else {
		hdr := trace.HeaderFor(g.World().Space(), *epochs, *seed)
		hdr.Comment = fmt.Sprintf("vqgen -epochs %d -sessions %d -seed %d", *epochs, *sessions, *seed)
		w, err := trace.NewWriter(f, hdr, len(*out) > 3 && (*out)[len(*out)-3:] == ".gz")
		if err != nil {
			log.Fatal(err)
		}
		if err := g.ForEach(func(s *session.Session) error { return w.Write(s) }); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		count = w.Count()
	}
	if *index {
		if *asCSV || *asJSONL || (len(*out) > 3 && (*out)[len(*out)-3:] == ".gz") {
			log.Fatal("-index requires an uncompressed binary trace")
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		idx, err := trace.BuildIndex(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.Save(*out + ".idx"); err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Printf("wrote epoch index to %s.idx (%d epochs)\n", *out, len(idx.Entries))
		}
	}
	if !*quiet {
		fmt.Printf("wrote %d sessions across %d epochs to %s (%d ground-truth events)\n",
			count, *epochs, *out, len(g.Schedule().Events))
	}
}
