// Command vqlint-vet adapts the repo's lint rules (internal/lint) to the
// go vet driver protocol, so the same analyzers run under
//
//	go vet -vettool=$(command -v vqlint-vet) ./...
//
// and inherit go vet's incremental action cache and build-system integration
// for free. The protocol (the one golang.org/x/tools/go/analysis/unitchecker
// implements, reimplemented here on the standard library alone) has three
// entry points:
//
//   - "-V=full" prints a content-addressed version line; the go command
//     folds it into its action cache key so rebuilding the tool invalidates
//     cached vet results.
//   - "-flags" prints the tool's analyzer flags as a JSON array; vqlint-vet
//     exposes none.
//   - otherwise the single argument is a *.cfg file, a JSON description of
//     one package: its source files plus export data for every import. The
//     tool type-checks the package against that export data (no source
//     re-loading, unlike the standalone vqlint), runs every rule, prints
//     findings to stderr, and writes the (empty) facts file go vet expects.
//
// Standalone vqlint remains the primary interface — it has baselines, SARIF,
// and the -cache replay mode — but the vet adapter lets editors and `go test`
// wrappers that already speak vet surface the same findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	os.Exit(run(os.Args[1:], os.Stderr))
}

// printVersion emits the line cmd/go's toolID parser expects: the program
// name, the word "version", and a final buildID= field hashing the
// executable, so a rebuilt tool re-keys every cached vet action.
func printVersion() {
	var sum [sha256.Size]byte
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(os.Args[0]), sum[:16])
}

// vetConfig is the subset of the go vet .cfg JSON the adapter needs. The go
// command writes one per package; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func run(args []string, stderr io.Writer) int {
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintln(stderr, "vqlint-vet: expected a single *.cfg argument; run via go vet -vettool=") //vqlint:ignore errdrop terminal output; the exit code is the result
		return 2
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "vqlint-vet: %v\n", err) //vqlint:ignore errdrop terminal output; the exit code is the result
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "vqlint-vet: parsing %s: %v\n", args[0], err) //vqlint:ignore errdrop terminal output; the exit code is the result
		return 2
	}

	// vqlint-vet exports no facts, but the go command still demands the
	// facts file of every action, dependency-only ones included.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o644); err != nil {
			fmt.Fprintf(stderr, "vqlint-vet: %v\n", err) //vqlint:ignore errdrop terminal output; the exit code is the result
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := loadFromConfig(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "vqlint-vet: %v\n", err) //vqlint:ignore errdrop terminal output; the exit code is the result
		return 1
	}
	diags := lint.Run([]*lint.Package{pkg}, lint.All())
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Rule) //vqlint:ignore errdrop diagnostic stream go vet consumes; the exit code is the result
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadFromConfig parses and type-checks the package the .cfg describes.
// Imports resolve through the export data the go command already compiled
// (cfg.PackageFile), never through source, which is what makes the vet path
// incremental: an unchanged dependency is a file open, not a re-typecheck.
func loadFromConfig(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ID, err)
	}
	return &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
