package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoVetIntegration builds the adapter and drives it through the real
// go vet driver against a throwaway module: the buggy package must fail vet
// with our rule IDs in the output, and the clean control must pass. This is
// the protocol contract — -V=full, -flags, the .cfg round, vetx outputs —
// exercised by the only client that matters.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and execs the go tool")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}

	tool := filepath.Join(t.TempDir(), "vqlint-vet")
	build := exec.Command(goTool, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vqlint-vet: %v\n%s", err, out)
	}

	dir := t.TempDir()
	for name, src := range map[string]string{
		"go.mod": "module vetmod\n\ngo 1.22\n",
		"bad/bad.go": "package bad\n\n" +
			"func Eq(x, y float64) bool { return x == y }\n",
		"ok/ok.go": "package ok\n\n" +
			"func Three() int { return 3 }\n",
	} {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	vet := func(pattern string) (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+tool, pattern)
		cmd.Dir = dir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}

	out, err := vet("./bad")
	if err == nil {
		t.Fatalf("go vet on the buggy package passed; output:\n%s", out)
	}
	if !strings.Contains(out, "[floatcmp]") || !strings.Contains(out, "float comparison") {
		t.Errorf("vet output missing the floatcmp finding:\n%s", out)
	}

	out, err = vet("./ok")
	if err != nil {
		t.Errorf("go vet on the clean package failed: %v\n%s", err, out)
	}
}
