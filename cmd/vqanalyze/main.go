// Command vqanalyze runs the paper's clustering and critical-cluster
// analysis over a trace file produced by vqgen (or the heartbeat collector)
// and prints the headline structure: global problem ratios, problem and
// critical cluster counts, coverage, and the top critical clusters per
// metric with named attributes.
//
// Usage:
//
//	vqanalyze -trace trace.vqt.gz [-top 10] [-metric BufRatio]
//	vqanalyze -trace trace.vqt.gz -drill "CDN=cdn-03" -metric JoinFailure -epoch 5
//
// The -drill form runs the §6 diagnostic extension: it decomposes the named
// cluster across every free attribute dimension for one epoch and reports
// whether the elevation is uniform (the cause anchors there) or
// concentrated (refine the investigation), plus suggested remedies.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/session"
	"repro/internal/trace"
)

// runDrill re-reads the trace, isolates one epoch, and runs the diagnostic
// drill-down for the named cluster.
func runDrill(space *attr.Space, path, keyText, metricName string, at int, cfg core.Config) error {
	if metricName == "" {
		return fmt.Errorf("-drill requires -metric")
	}
	m, err := metric.Parse(metricName)
	if err != nil {
		return err
	}
	key, err := space.ParseKey(keyText)
	if err != nil {
		return err
	}
	var lites []cluster.Lite
	// Prefer the epoch index (vqgen -index) for random access; fall back to
	// a full scan.
	if idx, err := trace.LoadIndex(path + ".idx"); err == nil {
		batch, err := trace.ReadEpoch(path, idx, epoch.Index(at))
		if err != nil {
			return err
		}
		for i := range batch {
			lites = append(lites, cluster.Digest(&batch[i], cfg.Thresholds))
		}
	} else {
		r, err := trace.Open(path)
		if err != nil {
			return err
		}
		defer r.Close()
		err = r.ForEach(func(s *session.Session) error {
			if s.Epoch == epoch.Index(at) {
				lites = append(lites, cluster.Digest(s, cfg.Thresholds))
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(lites) == 0 {
		return fmt.Errorf("epoch %d has no sessions in %s", at, path)
	}
	tbl := cluster.NewTable(epoch.Index(at), lites, cfg.MaxDims)
	defer tbl.Release()
	view, err := cluster.BuildView(tbl, m, cfg.Thresholds)
	if err != nil {
		return err
	}
	rep, err := diagnose.Drill(view, key, space)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	fmt.Println()
	for _, bd := range rep.Dimensions {
		t := report.Table{
			Title:   fmt.Sprintf("Decomposition along %s (elevated share %s)", bd.Dim, report.Pct(bd.ElevatedShare)),
			Columns: []string{"Value", "Sessions", "Problems", "Ratio", "Elevated"},
		}
		limit := len(bd.Children)
		if limit > 8 {
			limit = 8
		}
		for _, c := range bd.Children[:limit] {
			t.AddRow(c.Name, c.Sessions, c.Problems, c.Ratio, fmt.Sprintf("%v", c.Elevated))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vqanalyze: ")
	var (
		path       = flag.String("trace", "", "trace file to analyse (required)")
		top        = flag.Int("top", 10, "top critical clusters to print per metric")
		metricName = flag.String("metric", "", "restrict output to one metric (BufRatio, Bitrate, JoinTime, JoinFailure)")
		minSess    = flag.Int("min-sessions", 0, "override the cluster size floor (0 = scale from volume)")
		drill      = flag.String("drill", "", "diagnose this cluster (e.g. \"CDN=cdn-03\"); requires -metric and -epoch")
		drillEpoch = flag.Int("epoch", 0, "epoch for -drill")
		workers    = flag.Int("workers", 0, "analysis shards per epoch (0 = GOMAXPROCS)")
		pipeDepth  = flag.Int("pipeline-depth", 1, "completed epochs buffered between trace reading and analysis")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memprofile); err != nil {
			log.Print(err)
		}
	}()

	r, err := trace.Open(*path)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	hdr := r.Header()
	space, err := hdr.Space()
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig(4000)
	if *minSess > 0 {
		cfg.Thresholds.MinClusterSessions = *minSess
	}
	cfg.Workers = *workers
	cfg.PipelineDepth = *pipeDepth

	if *drill != "" {
		if err := runDrill(space, *path, *drill, *metricName, *drillEpoch, cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	tr, err := core.AnalyzeTrace(r, cfg)
	if err != nil {
		log.Fatal(err)
	}

	metrics := metric.All()
	if *metricName != "" {
		m, err := metric.Parse(*metricName)
		if err != nil {
			log.Fatal(err)
		}
		metrics = [metric.NumMetrics]metric.Metric{m, m, m, m}
		metrics[1], metrics[2], metrics[3] = m, m, m // single metric, printed once below
	}

	// Headline table.
	t := report.Table{
		Title: fmt.Sprintf("Analysis of %s: %d epochs", *path, tr.Trace.Len()),
		Columns: []string{"Metric", "GlobalRatio", "ProblemClusters/epoch",
			"CriticalClusters/epoch", "ProblemCoverage", "CriticalCoverage"},
	}
	rows := analysis.Table1(tr)
	printed := map[metric.Metric]bool{}
	var order []metric.Metric // metrics in first-seen order, for deterministic output
	for _, m := range metrics {
		if printed[m] {
			continue
		}
		printed[m] = true
		order = append(order, m)
		var ratio float64
		for i := range tr.Epochs {
			ms := &tr.Epochs[i].Metrics[m]
			if ms.GlobalSessions > 0 {
				ratio += float64(ms.GlobalProblems) / float64(ms.GlobalSessions)
			}
		}
		if n := len(tr.Epochs); n > 0 {
			ratio /= float64(n)
		}
		row := rows[m]
		t.AddRow(m.String(), ratio, row.MeanProblemClusters, row.MeanCriticalClusters,
			report.Pct(row.MeanProblemCoverage), report.Pct(row.MeanCriticalCoverage))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Top critical clusters per metric.
	for _, m := range order {
		h := analysis.BuildHistory(tr, m)
		keys := h.TopCritical(*top)
		ct := report.Table{
			Title:   fmt.Sprintf("\nTop critical clusters — %s (by attributed problem sessions)", m),
			Columns: []string{"#", "CriticalCluster", "Prevalence", "MaxStreakH", "AttributedProblems"},
		}
		for i, k := range keys {
			ks := h.Critical[k]
			_, max := h.Persistence(analysis.CriticalClusters, k)
			ct.AddRow(i+1, space.FormatKey(k),
				report.Pct(h.Prevalence(analysis.CriticalClusters, k)), max, ks.TotalProblems)
		}
		if err := ct.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
