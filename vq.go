// Package repro is a from-scratch Go reproduction of "Shedding Light on the
// Structure of Internet Video Quality Problems in the Wild" (Jiang, Sekar,
// Stoica, Zhang — CoNEXT 2013).
//
// The paper analyses 300 million video sessions to show that a small number
// of critical clusters — minimal attribute combinations such as a single
// CDN, ISP, or content provider — explain most quality problems, that these
// problems recur and persist for hours, and that fixing just the top 1% of
// critical clusters would alleviate 15–55% of problem sessions.
//
// Because the original Conviva dataset is proprietary, this module couples
// the paper's full analysis pipeline with a calibrated synthetic substrate:
// a world of 379 content providers, 19 CDNs and hundreds of ASNs; injected
// ground-truth problem events with heavy-tailed durations; an
// adaptive-bitrate player simulation; and a TCP heartbeat measurement
// pipeline. Every table and figure of the paper's evaluation is regenerated
// by the experiments suite, and — uniquely possible in a synthetic setting
// — detections are validated against ground truth.
//
// # Quick start
//
//	cfg := repro.QuickConfig(1)
//	study, err := repro.NewStudy(cfg)
//	if err != nil { ... }
//	study.Suite().Table1(os.Stdout) // paper Table 1 on the synthetic trace
//
// The cmd/ directory holds the executables (vqgen, vqanalyze, vqreport,
// vqcollect, vqmonitor); examples/ holds runnable scenario walkthroughs
// (quickstart, isp_outage, multicdn_whatif, live_heartbeat,
// abr_comparison); DESIGN.md and
// EXPERIMENTS.md document the system inventory and the paper-vs-measured
// numbers.
package repro

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/whatif"
)

// Re-exported domain types. The internal packages carry the full APIs;
// these aliases are the stable, documented surface.
type (
	// Metric is one of the four quality metrics (BufRatio, Bitrate,
	// JoinTime, JoinFailure).
	Metric = metric.Metric
	// Thresholds classify problem sessions and significant clusters.
	Thresholds = metric.Thresholds
	// QoE is a session's measured quality.
	QoE = metric.QoE
	// Session is one video viewing session.
	Session = session.Session
	// Key identifies a cluster: attribute dimensions plus values.
	Key = attr.Key
	// Dim is one of the seven session attribute dimensions.
	Dim = attr.Dim
	// Space maps attribute value identifiers to names.
	Space = attr.Space
	// EpochIndex is a zero-based hour index.
	EpochIndex = epoch.Index
	// EpochRange is a half-open epoch interval.
	EpochRange = epoch.Range
	// Event is an injected ground-truth problem cause.
	Event = events.Event
	// TraceResult is a full per-epoch analysis.
	TraceResult = core.TraceResult
	// Suite regenerates the paper's tables and figures.
	Suite = experiments.Suite
	// History is a metric's cluster-occurrence index across epochs.
	History = analysis.History
)

// The four quality metrics.
const (
	BufRatio    = metric.BufRatio
	Bitrate     = metric.Bitrate
	JoinTime    = metric.JoinTime
	JoinFailure = metric.JoinFailure
)

// The seven attribute dimensions, in the paper's order.
const (
	ASN        = attr.ASN
	CDN        = attr.CDN
	Site       = attr.Site
	VoDOrLive  = attr.VoDOrLive
	PlayerType = attr.PlayerType
	Browser    = attr.Browser
	ConnType   = attr.ConnType
)

// Config couples dataset generation with analysis parameters.
type Config struct {
	// Synth configures the synthetic dataset (world, events, volume).
	Synth synth.Config
	// Analysis configures clustering and critical-cluster detection.
	Analysis core.Config
}

// DefaultConfig returns the calibrated two-week configuration whose
// analysis lands in the paper's reported bands. Seed selects the synthetic
// universe; identical seeds reproduce identical studies.
func DefaultConfig(seed uint64) Config {
	sc := synth.DefaultConfig()
	sc.Seed = seed
	return Config{
		Synth:    sc,
		Analysis: core.DefaultConfig(sc.SessionsPerEpoch),
	}
}

// QuickConfig returns a laptop-quick configuration (three days, reduced
// volume) for exploration and tests. Structural findings match the default
// configuration; absolute cluster counts are smaller.
func QuickConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Synth.Trace = epoch.Range{Start: 0, End: 72}
	cfg.Synth.SessionsPerEpoch = 2000
	cfg.Synth.Events.Trace = cfg.Synth.Trace
	cfg.Analysis = core.DefaultConfig(cfg.Synth.SessionsPerEpoch)
	return cfg
}

// Study is a generated dataset with its complete analysis.
type Study struct {
	suite *experiments.Suite
}

// NewStudy generates the dataset and runs the full per-epoch analysis.
func NewStudy(cfg Config) (*Study, error) {
	s, err := experiments.NewSuite(cfg.Synth, cfg.Analysis)
	if err != nil {
		return nil, err
	}
	return &Study{suite: s}, nil
}

// Suite exposes the experiment runner (one method per paper table/figure).
func (st *Study) Suite() *Suite { return st.suite }

// Result returns the whole-trace analysis.
func (st *Study) Result() *TraceResult { return st.suite.TR }

// AttrSpace returns the study's attribute catalog (for naming keys).
func (st *Study) AttrSpace() *Space { return st.suite.Gen.World().Space() }

// GroundTruth returns the injected problem events.
func (st *Study) GroundTruth() []Event { return st.suite.Gen.Schedule().Events }

// History builds the week-1 cluster-occurrence index for metric m.
func (st *Study) History(m Metric) *History { return st.suite.History(m) }

// TopCritical returns the k highest-coverage critical clusters of metric m
// over week 1 (the paper's §5.1 coverage ranking).
func (st *Study) TopCritical(m Metric, k int) []Key {
	return st.suite.History(m).TopCritical(k)
}

// FixClusters simulates repairing the given critical clusters across the
// whole trace, returning the fraction of metric-m problem sessions
// alleviated (paper §5's what-if primitive).
func (st *Study) FixClusters(m Metric, keys []Key) float64 {
	set := make(map[Key]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return whatif.FixKeys(st.suite.TR, m, set, st.suite.TR.Trace).Fraction()
}

// WriteTrace streams the study's full synthetic trace to w in the trace
// container format (readable by cmd/vqanalyze and trace.NewReader).
func (st *Study) WriteTrace(w io.Writer, compress bool) error {
	gen := st.suite.Gen
	hdr := trace.HeaderFor(gen.World().Space(), gen.Config().Trace.Len(), gen.Config().Seed)
	hdr.Comment = "synthetic trace generated by repro.Study"
	tw, err := trace.NewWriter(w, hdr, compress)
	if err != nil {
		return err
	}
	if err := gen.ForEach(func(s *session.Session) error { return tw.Write(s) }); err != nil {
		return err
	}
	return tw.Close()
}

// Report renders every reproduced table and figure to w in paper order.
func (st *Study) Report(w io.Writer) error { return st.suite.All(w) }
